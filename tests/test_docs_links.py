"""Docs hygiene: every relative link in README.md and docs/ resolves.

Runs the same script the CI lint job runs (``tools/check_links.py``)
so a broken link fails locally before it fails in CI.
"""

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_readme_and_docs_links_resolve():
    completed = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_links.py")],
        capture_output=True, text=True, check=False)
    assert completed.returncode == 0, completed.stdout


def test_docs_tree_present():
    # The operator documentation the README links out to.
    for name in ("architecture.md", "scenarios.md", "metrics.md"):
        assert (ROOT / "docs" / name).exists(), f"docs/{name} missing"
