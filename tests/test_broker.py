"""Unit tests for the event broker delivery modes."""

from repro.broker import Broker, DeliveryMode
from repro.runtime import Environment


def make_broker(mode, **kwargs):
    env = Environment(seed=42)
    broker = Broker(env, default_mode=mode, **kwargs)
    return env, broker


def test_publish_returns_envelope_with_metadata():
    env, broker = make_broker(DeliveryMode.UNORDERED)
    envelope = broker.publish("orders", key="o1", payload={"id": 1})
    assert envelope.topic == "orders"
    assert envelope.key == "o1"
    assert envelope.publish_time == 0.0
    assert envelope.sequence > 0


def test_subscriber_receives_published_event():
    env, broker = make_broker(DeliveryMode.UNORDERED)
    received = []
    broker.subscribe("orders", "svc", lambda e: received.append(e.payload))
    broker.publish("orders", key="o1", payload="hello")
    env.run()
    assert received == ["hello"]


def test_multiple_subscribers_each_receive_event():
    env, broker = make_broker(DeliveryMode.UNORDERED)
    a, b = [], []
    broker.subscribe("t", "a", lambda e: a.append(e.payload))
    broker.subscribe("t", "b", lambda e: b.append(e.payload))
    broker.publish("t", key="k", payload=1)
    env.run()
    assert a == [1] and b == [1]


def test_unordered_mode_can_reorder_same_key_events():
    env, broker = make_broker(DeliveryMode.UNORDERED,
                              base_latency=0.001, jitter=0.05)
    received = []
    broker.subscribe("t", "svc", lambda e: received.append(e.payload))
    for i in range(50):
        broker.publish("t", key="k", payload=i)
    env.run()
    assert sorted(received) == list(range(50))
    assert received != list(range(50)), "expected at least one reordering"


def test_fifo_mode_preserves_per_key_order():
    env, broker = make_broker(DeliveryMode.FIFO,
                              base_latency=0.001, jitter=0.05)
    received = []
    broker.subscribe("t", "svc", lambda e: received.append(e.payload))
    for i in range(50):
        broker.publish("t", key="k", payload=i)
    env.run()
    assert received == list(range(50))


def test_fifo_mode_allows_cross_key_interleaving():
    env, broker = make_broker(DeliveryMode.FIFO,
                              base_latency=0.001, jitter=0.05)
    received = []
    broker.subscribe("t", "svc", lambda e: received.append(e.payload))
    for i in range(10):
        broker.publish("t", key=f"k{i % 3}", payload=(i % 3, i))
    env.run()
    for key in range(3):
        per_key = [i for (k, i) in received if k == key]
        assert per_key == sorted(per_key)


def test_causal_mode_delays_event_until_dependency_delivered():
    env, broker = make_broker(DeliveryMode.CAUSAL,
                              base_latency=0.001, jitter=0.0)
    received = []
    broker.subscribe("t", "svc", lambda e: received.append(e.payload))
    first = broker.publish("t", key="a", payload="payment")
    # Shipment on a different key depends causally on the payment event.
    broker.publish("t", key="b", payload="shipment",
                   causal_deps=[first.sequence])
    env.run()
    assert received.index("payment") < received.index("shipment")


def test_causal_mode_buffers_out_of_order_dependency():
    env, broker = make_broker(DeliveryMode.CAUSAL, base_latency=0.0,
                              jitter=0.0)
    received = []
    broker.subscribe("t", "svc", lambda e: received.append(e.payload))

    def scenario(env):
        # Publish the dependent event first; its dependency arrives later.
        dep_seq = 10_000_000  # a sequence that does not exist yet
        broker.publish("t", key="b", payload="late-dep",
                       causal_deps=[dep_seq])
        yield env.timeout(0.01)
        return None

    env.process(scenario(env))
    env.run(until=0.1)
    assert received == []  # never delivered: dependency never arrives


def test_causal_dependency_arriving_later_releases_buffered_event():
    env, broker = make_broker(DeliveryMode.CAUSAL, base_latency=0.0,
                              jitter=0.0)
    received = []
    broker.subscribe("t", "svc", lambda e: received.append(e.payload))

    def scenario(env):
        placeholder = broker.publish("t2", key="x", payload="dep")
        broker.publish("t", key="b", payload="second",
                       causal_deps=[placeholder.sequence])
        yield env.timeout(0.01)
        # Now deliver the dependency on the same topic/subscriber.
        broker.subscribe("t2", "svc2", lambda e: None)
        return None

    # The dependency was published on another topic, so subscriber "svc"
    # will never see it; the event stays buffered.
    env.process(scenario(env))
    env.run(until=0.1)
    assert received == []


def test_generator_handler_runs_as_process():
    env, broker = make_broker(DeliveryMode.FIFO, base_latency=0.0, jitter=0.0)
    done = []

    def handler(envelope):
        yield env.timeout(0.5)
        done.append((env.now, envelope.payload))

    broker.subscribe("t", "svc", handler)
    broker.publish("t", key="k", payload="work")
    env.run()
    assert done == [(0.5, "work")]


def test_configure_topic_overrides_default_mode():
    env, broker = make_broker(DeliveryMode.UNORDERED)
    broker.configure_topic("ordered", DeliveryMode.FIFO)
    assert broker.topic("ordered").mode is DeliveryMode.FIFO
    assert broker.topic("other").mode is DeliveryMode.UNORDERED


def test_configure_topic_after_use_rejected():
    import pytest
    env, broker = make_broker(DeliveryMode.UNORDERED)
    broker.topic("t")
    with pytest.raises(RuntimeError):
        broker.configure_topic("t", DeliveryMode.FIFO)


def test_delivery_log_records_subscriber_and_time():
    env, broker = make_broker(DeliveryMode.FIFO, base_latency=0.002,
                              jitter=0.0)
    broker.subscribe("t", "svc", lambda e: None)
    broker.publish("t", key="k", payload="x")
    env.run()
    deliveries = broker.deliveries("t")
    assert len(deliveries) == 1
    name, when, envelope = deliveries[0]
    assert name == "svc"
    assert when == 0.002
    assert envelope.payload == "x"


def test_deliveries_of_unknown_topic_is_empty():
    env, broker = make_broker(DeliveryMode.FIFO)
    assert broker.deliveries("nope") == []


def test_envelope_with_deps_merges_dependencies():
    env, broker = make_broker(DeliveryMode.CAUSAL)
    envelope = broker.publish("t", key="k", payload=1, causal_deps=[5])
    extended = envelope.with_deps([3, 5, 9])
    assert extended.causal_deps == (3, 5, 9)
    assert envelope.causal_deps == (5,)
