"""Activation working-set control: evict, reload, preserve state.

Every stack honours ``AppConfig.activation_limit`` — the Orleans
clusters page quiet grains out through the pager under an LRU sweep,
Statefun spills checkpointed addresses to a cold tier — and every
stack must bring state back bit-for-bit when traffic returns.  These
tests drive real marketplace transactions under a deliberately tiny
budget and assert the three observable guarantees:

* the budget bites (evictions > 0) and reloads happen when evicted
  entities are touched again;
* business state survives the evict/re-activate round trip (price
  versions keep counting, checkouts still decrement the right stock);
* the business outcome is identical to an unlimited run — paging is
  a memory policy, not a semantics change.
"""

import pytest

from repro.apps import ALL_APPS, AppConfig
from repro.core import WorkloadConfig, generate_dataset
from repro.marketplace.constants import PaymentMethod
from repro.runtime import Environment

APP_NAMES = list(ALL_APPS)
ORLEANS_APPS = [name for name in APP_NAMES if name != "statefun"]

SMALL = WorkloadConfig(sellers=4, customers=16, products_per_seller=4,
                       initial_stock=1000)
TIGHT_LIMIT = 8  # per silo/worker — far below the ~70-grain world


def make_app(name, activation_limit=None, seed=7):
    env = Environment(seed=seed)
    app = ALL_APPS[name](env, AppConfig(
        silos=2, cores_per_silo=2, activation_limit=activation_limit))
    app.ingest(generate_dataset(SMALL, seed=seed))
    return env, app


def run_op(env, generator):
    process = env.process(generator)
    return env.run(until=process)


def settle(env, delta=2.0):
    """Let sweeps/checkpoints run with no traffic in flight."""
    env.run(until=env.now + delta)


def touch_all_products(env, app):
    results = []
    for product in app.dataset.products:
        results.append(run_op(env, app.update_price(
            product.seller_id, product.product_id,
            product.price_cents + 100)))
    return results


def business_outcome(app):
    views = app.audit_views()
    products = {key: (state["price_cents"], state["version"])
                for key, state in views["products"].items()}
    stock = {key: (state["qty_available"], state["qty_reserved"])
             for key, state in views["stock"].items()}
    return products, stock


@pytest.mark.parametrize("name", APP_NAMES)
class TestWorkingSetBudget:
    def test_budget_bites_and_reloads(self, name):
        env, app = make_app(name, activation_limit=TIGHT_LIMIT)
        # First pass touches every product grain; the quiet ones get
        # swept out while later ones are being updated.
        for result in touch_all_products(env, app):
            assert result.ok, result
        settle(env)
        stats = app.runtime_stats()["working_set"]
        assert stats["limit"] == TIGHT_LIMIT
        assert stats["evictions"] > 0, stats
        # Second pass re-touches them all: evicted grains must come
        # back through the pager, not as blank activations.
        for result in touch_all_products(env, app):
            assert result.ok, result
        stats = app.runtime_stats()["working_set"]
        assert stats["reloads"] > 0, stats

    def test_state_survives_round_trip(self, name):
        env, app = make_app(name, activation_limit=TIGHT_LIMIT)
        target = app.dataset.products[0]
        first = run_op(env, app.update_price(
            target.seller_id, target.product_id, 12_345))
        assert first.ok
        # Evict the target by touching the rest of the world and
        # letting the sweep run.
        for product in app.dataset.products[1:]:
            assert run_op(env, app.update_price(
                product.seller_id, product.product_id,
                product.price_cents + 1)).ok
        settle(env)
        # The audited view must still see the paged-out update ...
        view = app.audit_views()["products"][target.key]
        assert view["price_cents"] == 12_345
        # ... and a fresh transaction continues from that state: the
        # version counter keeps counting instead of restarting.
        second = run_op(env, app.update_price(
            target.seller_id, target.product_id, 23_456))
        assert second.ok
        view = app.audit_views()["products"][target.key]
        assert view["price_cents"] == 23_456
        assert view["version"] == first.payload["version"] + 1

    def test_checkout_across_eviction(self, name):
        env, app = make_app(name, activation_limit=TIGHT_LIMIT)
        target = app.dataset.products[0]
        assert run_op(env, app.add_item(
            1, target.seller_id, target.product_id, 5)).ok
        # Page the cart/stock world out from under the open cart.
        touch_all_products(env, app)
        settle(env)
        result = run_op(env, app.checkout(
            1, "order-ws-1", PaymentMethod.CREDIT_CARD))
        assert result.ok, result
        settle(env)
        stock = app.audit_views()["stock"][target.key]
        assert stock["qty_available"] == SMALL.initial_stock - 5
        assert stock["qty_reserved"] == 0

    def test_no_limit_means_no_paging(self, name):
        env, app = make_app(name, activation_limit=None)
        touch_all_products(env, app)
        settle(env)
        stats = app.runtime_stats()["working_set"]
        assert stats["limit"] is None
        assert stats["evictions"] == 0
        assert stats["reloads"] == 0
        assert stats["paged"] == 0

    def test_outcome_matches_unlimited_run(self, name):
        """Paging is a memory policy, not a semantics change."""
        outcomes = []
        for limit in (None, TIGHT_LIMIT):
            env, app = make_app(name, activation_limit=limit)
            assert run_op(env, app.add_item(2, 1, 1, 3)).ok
            touch_all_products(env, app)
            assert run_op(env, app.checkout(
                2, "order-par-1", PaymentMethod.DEBIT_CARD)).ok
            settle(env)
            outcomes.append(business_outcome(app))
        assert outcomes[0] == outcomes[1]


@pytest.mark.parametrize("name", ORLEANS_APPS)
def test_resident_population_respects_limit(name):
    """After traffic quiesces, each silo holds at most the budget."""
    env, app = make_app(name, activation_limit=TIGHT_LIMIT)
    touch_all_products(env, app)
    settle(env)
    stats = app.runtime_stats()["working_set"]
    assert stats["resident"] <= TIGHT_LIMIT * app.config.silos, stats
    assert stats["paged"] > 0
    assert stats["peak_resident"] >= stats["resident"]


def test_statefun_cold_tier_survives_failure():
    """Cold addresses are re-hydrated from checkpoints on recovery."""
    env, app = make_app("statefun", activation_limit=TIGHT_LIMIT)
    touch_all_products(env, app)
    settle(env)  # checkpoint covers the updates, budget sweep spills
    before = business_outcome(app)
    run_op(env, app.runtime.inject_failure())
    settle(env)
    assert business_outcome(app) == before
