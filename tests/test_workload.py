"""Unit tests for workload configuration, generation and key selection."""

import random

import pytest

from repro.core.workload import (
    InputCoordinator,
    ProductKeyRegistry,
    TransactionMix,
    WorkloadConfig,
    ZipfSampler,
    generate_dataset,
)


class TestTransactionMix:
    def test_normalised_sums_to_one(self):
        weights = TransactionMix().normalised()
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_custom_weights(self):
        mix = TransactionMix(checkout=50, price_update=50,
                             product_delete=0, update_delivery=0,
                             dashboard=0)
        weights = mix.normalised()
        assert weights["checkout"] == pytest.approx(0.5)
        assert weights["product_delete"] == 0.0

    def test_zero_total_rejected(self):
        mix = TransactionMix(checkout=0, price_update=0, product_delete=0,
                             update_delivery=0, dashboard=0)
        with pytest.raises(ValueError):
            mix.normalised()


class TestWorkloadConfig:
    def test_defaults_valid(self):
        config = WorkloadConfig()
        assert config.total_products == \
            config.sellers * config.products_per_seller

    @pytest.mark.parametrize("kwargs", [
        dict(sellers=0),
        dict(customers=0),
        dict(products_per_seller=0),
        dict(voucher_probability=1.5),
        dict(min_cart_items=0),
        dict(min_cart_items=3, max_cart_items=2),
        dict(zipf_s=-0.1),
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadConfig(**kwargs)


class TestGenerator:
    def test_counts_match_config(self):
        config = WorkloadConfig(sellers=4, customers=10,
                                products_per_seller=5,
                                reserve_fraction=0.4)
        dataset = generate_dataset(config, seed=1)
        assert len(dataset.sellers) == 4
        assert len(dataset.customers) == 10
        assert len(dataset.products) == 20
        assert len(dataset.reserve_products) == 4 * 2  # 40% of 5
        assert len(dataset.stock) == 20 + 8

    def test_product_ids_globally_unique(self):
        dataset = generate_dataset(WorkloadConfig(sellers=5,
                                                  products_per_seller=7),
                                   seed=2)
        ids = [product.product_id for product in dataset.all_products()]
        assert len(ids) == len(set(ids))

    def test_every_product_has_stock(self):
        config = WorkloadConfig(sellers=3, products_per_seller=4,
                                initial_stock=55)
        dataset = generate_dataset(config, seed=3)
        for product in dataset.all_products():
            assert dataset.stock[product.key].qty_available == 55

    def test_deterministic_for_seed(self):
        config = WorkloadConfig()
        first = generate_dataset(config, seed=9)
        second = generate_dataset(config, seed=9)
        assert [p.as_dict() for p in first.products] == \
            [p.as_dict() for p in second.products]

    def test_different_seeds_differ(self):
        config = WorkloadConfig()
        first = generate_dataset(config, seed=9)
        second = generate_dataset(config, seed=10)
        assert [p.price_cents for p in first.products] != \
            [p.price_cents for p in second.products]

    def test_prices_within_configured_range(self):
        config = WorkloadConfig(min_price_cents=500, max_price_cents=600)
        dataset = generate_dataset(config, seed=4)
        for product in dataset.all_products():
            assert 500 <= product.price_cents <= 600

    def test_dataset_summary_and_lookup(self):
        dataset = generate_dataset(WorkloadConfig(sellers=2,
                                                  products_per_seller=3),
                                   seed=5)
        summary = dataset.summary()
        assert summary["products"] == 6
        product = dataset.products[0]
        assert dataset.product_by_key(product.key) is product
        assert dataset.product_by_key("99/99") is None


class TestZipfSampler:
    def test_uniform_when_s_zero(self):
        rng = random.Random(1)
        sampler = ZipfSampler(10, 0.0, rng)
        counts = [0] * 10
        for _ in range(10_000):
            counts[sampler.sample()] += 1
        assert max(counts) < 2 * min(counts)

    def test_skewed_prefers_low_ranks(self):
        rng = random.Random(1)
        sampler = ZipfSampler(100, 1.2, rng)
        counts = [0] * 100
        for _ in range(20_000):
            counts[sampler.sample()] += 1
        assert counts[0] > counts[10] > counts[50]

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(20, 0.9, random.Random(1))
        total = sum(sampler.probability(rank) for rank in range(20))
        assert total == pytest.approx(1.0)

    def test_samples_within_range(self):
        sampler = ZipfSampler(5, 2.0, random.Random(3))
        for _ in range(1000):
            assert 0 <= sampler.sample() < 5

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0, random.Random(1))
        with pytest.raises(ValueError):
            ZipfSampler(5, -1.0, random.Random(1))


class TestProductKeyRegistry:
    def make(self):
        initial = [(1, i) for i in range(1, 6)]
        reserve = [(1, i) for i in range(6, 9)]
        return ProductKeyRegistry(initial, reserve)

    def test_rank_lookup(self):
        registry = self.make()
        assert registry.product_at(0) == (1, 1)
        assert registry.rank_of((1, 3)) == 2
        assert registry.rank_of((9, 9)) is None

    def test_delete_rebinds_rank_to_reserve(self):
        registry = self.make()
        outcome = registry.delete_at(0)
        assert outcome is not None
        deleted, replacement = outcome
        assert deleted == (1, 1)
        assert replacement == (1, 8)  # reserves pop from the end
        assert registry.product_at(0) == (1, 8)
        assert not registry.is_live((1, 1))
        assert registry.is_live((1, 8))

    def test_population_size_invariant_under_deletes(self):
        registry = self.make()
        for _ in range(3):
            registry.delete_at(1)
        assert len(registry) == 5
        assert len(set(registry.live_products())) == 5

    def test_delete_refused_when_reserve_empty(self):
        registry = self.make()
        for _ in range(3):
            assert registry.delete_at(0) is not None
        assert registry.delete_at(0) is None
        assert registry.refused_deletes == 1
        assert registry.deletes == 3

    def test_reserve_remaining(self):
        registry = self.make()
        assert registry.reserve_remaining == 3
        registry.delete_at(0)
        assert registry.reserve_remaining == 2


class TestInputCoordinator:
    def make(self):
        initial = [(1, i) for i in range(1, 6)]
        registry = ProductKeyRegistry(initial, [(1, 9)])
        sampler = ZipfSampler(5, 0.5, random.Random(7))
        return InputCoordinator([1, 2, 3], registry, sampler,
                                random.Random(8))

    def test_lease_customer_exclusive(self):
        coordinator = self.make()
        leased = set()
        for _ in range(3):
            customer = coordinator.lease_customer()
            assert customer is not None
            assert customer not in leased
            leased.add(customer)
        assert coordinator.lease_customer() is None

    def test_release_customer_allows_release(self):
        coordinator = self.make()
        customer = coordinator.lease_customer()
        coordinator.release_customer(customer)
        assert coordinator.lease_customer() is not None

    def test_lease_product_exclusive(self):
        coordinator = self.make()
        seen = set()
        for _ in range(5):
            lease = coordinator.lease_product(attempts=50)
            if lease is None:
                break
            rank, key = lease
            assert key not in seen
            seen.add(key)
        assert len(seen) >= 2

    def test_release_product(self):
        coordinator = self.make()
        rank, key = coordinator.lease_product(attempts=50)
        coordinator.release_product(key)
        # Can lease the same key again.
        for _ in range(100):
            lease = coordinator.lease_product(attempts=50)
            if lease and lease[1] == key:
                break
            if lease:
                coordinator.release_product(lease[1])
        else:
            pytest.fail("released product never leasable again")

    def test_sample_product_returns_live_keys(self):
        coordinator = self.make()
        for _ in range(50):
            key = coordinator.sample_product()
            assert key in [(1, i) for i in range(1, 6)]

    def test_empty_customer_list_rejected(self):
        registry = ProductKeyRegistry([(1, 1)], [])
        sampler = ZipfSampler(1, 0.0, random.Random(1))
        with pytest.raises(ValueError):
            InputCoordinator([], registry, sampler, random.Random(1))
