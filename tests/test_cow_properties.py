"""Property-based tests for the copy-on-write state engine.

The engine's isolation contract is load-bearing for every app stack:
a grain method mutating its read view must never leak into committed
state, an aborted transaction's staging must vanish, and a commit must
install exactly the staged version.  These properties are exercised
over randomly generated JSON-ish state trees and random mutation
programs, plus directly at the :class:`TransactionParticipant` level.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cow import (
    CowList,
    CowState,
    clone,
    materialize,
    peek,
    scan_items,
    scan_values,
)
from repro.runtime import Environment
from repro.txn.context import TransactionContext
from repro.txn.participant import COMMIT_LOG_TAIL, TransactionParticipant

# ---------------------------------------------------------------------------
# strategies: plain-data state trees and mutation programs
# ---------------------------------------------------------------------------

atoms = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**6, max_value=10**6),
    st.text(max_size=12),
)

trees = st.recursive(
    atoms,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
        st.sets(st.integers(min_value=0, max_value=50), max_size=4),
    ),
    max_leaves=20,
)

states = st.dictionaries(st.text(max_size=6), trees, max_size=5)

#: Trees without sets: reading a set through a view is conservatively
#: counted as a write (a set copy cannot report mutation), so only
#: set-free states satisfy the "clean reads share the base" property.
setless_trees = st.recursive(
    atoms,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=20,
)

setless_states = st.dictionaries(st.text(max_size=6), setless_trees,
                                 max_size=5)

#: A mutation step: (op, key, value).  Applied identically to the view
#: and to a deep-copied reference dict, then compared.
mutations = st.lists(
    st.tuples(st.sampled_from(["set", "del", "nest", "append"]),
              st.text(max_size=6), trees),
    max_size=6,
)


def apply_program(target, program):
    """Apply a mutation program to a mapping (view or plain dict).

    Values are deep-copied per application: the same program is applied
    to both a view and a reference dict, and a shared mutable value
    would couple the two runs (an append through one leaks into the
    other's input), producing false mismatches.
    """
    for op, key, value in program:
        value = copy.deepcopy(value)
        if op == "set":
            target[key] = value
        elif op == "del":
            target.pop(key, None)
        elif op == "nest":
            nested = target.get(key)
            if isinstance(nested, (dict, CowState)):
                nested["leaf"] = value
            else:
                target[key] = {"leaf": value}
        elif op == "append":
            nested = target.get(key)
            if isinstance(nested, (list, CowList)):
                nested.append(value)
            else:
                target[key] = [value]


# ---------------------------------------------------------------------------
# view isolation
# ---------------------------------------------------------------------------

@settings(max_examples=120, deadline=None)
@given(states, mutations)
def test_view_mutation_never_leaks_into_base(base, program):
    frozen = copy.deepcopy(base)
    view = CowState(base)
    apply_program(view, program)
    assert base == frozen, "mutating a view must not touch its base"


@settings(max_examples=120, deadline=None)
@given(states, mutations)
def test_view_equals_plain_dict_after_same_mutations(base, program):
    reference = copy.deepcopy(base)
    view = CowState(base)
    apply_program(view, program)
    apply_program(reference, program)
    assert materialize(view) == reference


@settings(max_examples=120, deadline=None)
@given(states, mutations)
def test_materialize_isolates_result_from_further_view_mutations(
        base, program):
    view = CowState(base)
    apply_program(view, program)
    installed = materialize(view)
    snapshot = copy.deepcopy(installed)
    # Mutations applied after materialize must not reach the result.
    apply_program(view, [("set", key, "poison") for key in list(view)]
                  or [("set", "k", "poison")])
    view["fresh"] = ["poison"]
    assert installed == snapshot


@settings(max_examples=100, deadline=None)
@given(setless_states)
def test_clean_view_materializes_to_base_by_reference(base):
    view = CowState(base)
    # Reading (including nested reads) does not count as a change.
    for key in list(view):
        view[key]
        list(scan_values(view))
    assert materialize(view) is base


@settings(max_examples=100, deadline=None)
@given(states)
def test_clone_is_fully_detached(base):
    frozen = copy.deepcopy(base)
    result = clone(CowState(base))
    assert result == base
    # Mutating the clone (including nested containers) leaves the
    # source untouched — required where the clone is edited in place.
    apply_program(result, [("set", "x", 1), ("nest", "y", 2)])
    for value in result.values():
        if isinstance(value, dict):
            value["poison"] = True
        elif isinstance(value, list):
            value.append("poison")
    assert base == frozen


@settings(max_examples=100, deadline=None)
@given(states)
def test_scan_matches_view_iteration(base):
    view = CowState(base)
    assert dict(scan_items(view)) == materialize(view)
    assert list(scan_values(view)) == list(
        materialize(value) for value in view.values())
    for key in base:
        assert materialize(peek(view, key)) == materialize(view[key])


@settings(max_examples=100, deadline=None)
@given(states, mutations)
def test_scan_observes_overlay_mutations(base, program):
    view = CowState(base)
    apply_program(view, program)
    assert {key: materialize(value)
            for key, value in scan_items(view)} == materialize(view)


# ---------------------------------------------------------------------------
# participant-level isolation (read / write / commit / abort)
# ---------------------------------------------------------------------------

def make_participant(initial):
    env = Environment(seed=1)
    participant = TransactionParticipant(
        env, ("T", "k"), log_write_latency=0.001, initial_state=initial)
    return env, participant


def make_ctx(env):
    return TransactionContext(env.now)


def run_process(env, generator):
    process = env.process(generator)
    env.run(until=process)
    return process.value


@settings(max_examples=60, deadline=None)
@given(states, mutations)
def test_read_copy_mutation_never_leaks_into_committed(initial, program):
    env, participant = make_participant(copy.deepcopy(initial))
    ctx = make_ctx(env)

    def txn():
        state = yield from participant.read(ctx)
        apply_program(state, program)
        # No write: the mutated read copy is simply dropped.

    run_process(env, txn())
    assert participant.committed_state == initial


@settings(max_examples=60, deadline=None)
@given(states, mutations)
def test_abort_discards_staging(initial, program):
    env, participant = make_participant(copy.deepcopy(initial))
    ctx = make_ctx(env)

    def txn():
        state = yield from participant.read(ctx)
        apply_program(state, program)
        yield from participant.write(ctx, state)

    run_process(env, txn())
    participant.abort(ctx)
    assert participant.committed_state == initial
    assert not participant._staged


@settings(max_examples=60, deadline=None)
@given(states, mutations)
def test_commit_installs_exactly_the_staged_version(initial, program):
    env, participant = make_participant(copy.deepcopy(initial))
    ctx = make_ctx(env)

    def txn():
        state = yield from participant.read(ctx)
        apply_program(state, program)
        yield from participant.write(ctx, state)
        staged = participant._staged[ctx.txid]
        ok = yield from participant.prepare(ctx)
        assert ok
        yield from participant.commit(ctx)
        return staged

    staged = run_process(env, txn())
    reference = copy.deepcopy(initial)
    apply_program(reference, program)
    assert participant.committed_state is staged
    assert participant.committed_state == reference


def test_commit_log_is_bounded_but_counters_are_not():
    env, participant = make_participant({})
    last_txid = None
    for _ in range(3 * COMMIT_LOG_TAIL):
        ctx = make_ctx(env)
        last_txid = ctx.txid

        def txn(ctx=ctx):
            state = yield from participant.read(ctx)
            state["n"] = ctx.txid
            yield from participant.write(ctx, state)
            yield from participant.prepare(ctx)
            yield from participant.commit(ctx)

        run_process(env, txn())
    assert len(participant.commit_log) == COMMIT_LOG_TAIL
    assert participant.commits == 3 * COMMIT_LOG_TAIL
    assert participant.prepares == 3 * COMMIT_LOG_TAIL
    assert participant.aborts == 0
    # The tail keeps the most recent outcomes.
    assert participant.commit_log[-1][1] == last_txid
