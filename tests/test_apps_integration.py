"""Integration tests: each implementation driven through real scenarios."""

import pytest

from repro.apps import ALL_APPS, AppConfig
from repro.core import (
    BenchmarkDriver,
    DriverConfig,
    WorkloadConfig,
    audit_app,
    generate_dataset,
)
from repro.core.workload.config import TransactionMix
from repro.marketplace.constants import PaymentMethod
from repro.runtime import Environment

APP_NAMES = list(ALL_APPS)

SMALL = WorkloadConfig(sellers=3, customers=12, products_per_seller=4,
                       initial_stock=1000)


def make_app(name, seed=11, **config):
    env = Environment(seed=seed)
    config.setdefault("silos", 2)
    config.setdefault("cores_per_silo", 2)
    app = ALL_APPS[name](env, AppConfig(**config))
    app.ingest(generate_dataset(SMALL, seed=seed))
    return env, app


def run_op(env, generator):
    process = env.process(generator)
    result = env.run(until=process)
    return result


@pytest.mark.parametrize("name", APP_NAMES)
class TestSingleOperations:
    def test_add_item_ok(self, name):
        env, app = make_app(name)
        result = run_op(env, app.add_item(1, 1, 1, 2))
        assert result.ok
        assert result.payload["price_version"] == 1

    def test_add_unknown_product_rejected(self, name):
        env, app = make_app(name)
        result = run_op(env, app.add_item(1, 9, 999, 1))
        assert result.status == "rejected"

    def test_checkout_happy_path(self, name):
        env, app = make_app(name)
        assert run_op(env, app.add_item(1, 1, 1, 2)).ok
        result = run_op(env, app.checkout(1, "order-1",
                                          PaymentMethod.CREDIT_CARD))
        assert result.ok, result
        assert result.payload["total_cents"] > 0

    def test_checkout_empty_cart_rejected(self, name):
        env, app = make_app(name)
        result = run_op(env, app.checkout(1, "order-x",
                                          PaymentMethod.CREDIT_CARD))
        assert result.status in ("rejected", "failed")

    def test_checkout_decrements_stock(self, name):
        env, app = make_app(name)
        run_op(env, app.add_item(1, 1, 1, 5))
        result = run_op(env, app.checkout(1, "order-1",
                                          PaymentMethod.DEBIT_CARD))
        assert result.ok
        env.run(until=env.now + 1.0)  # let async effects quiesce
        stock = app.audit_views()["stock"]["1/1"]
        assert stock["qty_available"] == 1000 - 5
        assert stock["qty_reserved"] == 0

    def test_checkout_creates_shipment_packages(self, name):
        env, app = make_app(name)
        run_op(env, app.add_item(1, 1, 1, 1))
        # Product ids are global: seller 2's catalogue starts after
        # seller 1's products plus its reserve product.
        second = run_op(env, app.add_item(1, 2, 6, 1))
        assert second.ok, second
        result = run_op(env, app.checkout(1, "order-1",
                                          PaymentMethod.BOLETO))
        assert result.ok
        env.run(until=env.now + 1.0)
        shipments = {}
        for partition in app.audit_views()["shipments"].values():
            shipments.update(partition.get("shipments", {}))
        assert "order-1" in shipments
        assert len(shipments["order-1"]["packages"]) == 2

    def test_declined_payment_releases_stock(self, name):
        env, app = make_app(name, approval_rate=0.0)
        run_op(env, app.add_item(1, 1, 1, 3))
        result = run_op(env, app.checkout(1, "order-1",
                                          PaymentMethod.CREDIT_CARD))
        assert result.status == "failed"
        env.run(until=env.now + 1.0)
        stock = app.audit_views()["stock"]["1/1"]
        assert stock["qty_available"] == 1000
        assert stock["qty_reserved"] == 0

    def test_price_update_visible_to_later_adds(self, name):
        env, app = make_app(name)
        result = run_op(env, app.update_price(1, 1, 123_45))
        assert result.ok
        assert result.payload["version"] == 2
        env.run(until=env.now + 1.0)  # replication quiesce
        add = run_op(env, app.add_item(1, 1, 1, 1))
        assert add.ok
        assert add.payload["price_version"] == 2

    def test_delete_product_blocks_later_adds(self, name):
        env, app = make_app(name)
        result = run_op(env, app.delete_product(1, 1))
        assert result.ok
        env.run(until=env.now + 1.0)
        add = run_op(env, app.add_item(1, 1, 1, 1))
        assert add.status == "rejected"

    def test_double_delete_rejected(self, name):
        env, app = make_app(name)
        assert run_op(env, app.delete_product(1, 1)).ok
        env.run(until=env.now + 1.0)
        second = run_op(env, app.delete_product(1, 1))
        assert second.status in ("rejected", "failed")

    def test_update_delivery_progresses_orders(self, name):
        env, app = make_app(name)
        run_op(env, app.add_item(1, 1, 1, 1))
        assert run_op(env, app.checkout(1, "order-1",
                                        PaymentMethod.CREDIT_CARD)).ok
        env.run(until=env.now + 1.0)
        result = run_op(env, app.update_delivery())
        assert result.ok
        assert result.payload["packages_delivered"] == 1
        env.run(until=env.now + 1.0)
        orders = app.audit_views()["orders"]["1"]["orders"]
        assert orders["order-1"]["status"] == "completed"

    def test_update_delivery_without_shipments_is_noop(self, name):
        env, app = make_app(name)
        result = run_op(env, app.update_delivery())
        assert result.ok
        assert result.payload["packages_delivered"] == 0

    def test_dashboard_reflects_in_progress_order(self, name):
        env, app = make_app(name)
        run_op(env, app.add_item(1, 1, 1, 2))
        checkout = run_op(env, app.checkout(1, "order-1",
                                            PaymentMethod.CREDIT_CARD))
        assert checkout.ok
        env.run(until=env.now + 1.0)
        result = run_op(env, app.dashboard(1))
        assert result.ok
        assert result.payload["amount_cents"] == \
            checkout.payload["total_cents"]
        assert result.payload["entries_total_cents"] == \
            result.payload["amount_cents"]

    def test_dashboard_empties_after_completion(self, name):
        env, app = make_app(name)
        run_op(env, app.add_item(1, 1, 1, 2))
        assert run_op(env, app.checkout(1, "order-1",
                                        PaymentMethod.CREDIT_CARD)).ok
        env.run(until=env.now + 1.0)
        run_op(env, app.update_delivery())
        env.run(until=env.now + 1.0)
        result = run_op(env, app.dashboard(1))
        assert result.ok
        assert result.payload["amount_cents"] == 0

    def test_customer_stats_recorded(self, name):
        env, app = make_app(name)
        run_op(env, app.add_item(1, 1, 1, 1))
        checkout = run_op(env, app.checkout(1, "order-1",
                                            PaymentMethod.CREDIT_CARD))
        assert checkout.ok
        env.run(until=env.now + 1.0)
        customer = app.audit_views()["customers"]["1"]
        assert customer["payments_succeeded"] == 1
        assert customer["spent_cents"] == checkout.payload["total_cents"]


@pytest.mark.parametrize("name", APP_NAMES)
class TestDriverRuns:
    def run_driver(self, name, seed=13, mix=None, **app_config):
        env = Environment(seed=seed)
        app = ALL_APPS[name](env, AppConfig(silos=2, cores_per_silo=2,
                                            **app_config))
        workload = WorkloadConfig(
            sellers=3, customers=16, products_per_seller=4,
            mix=mix or TransactionMix())
        driver = BenchmarkDriver(
            env, app, workload,
            DriverConfig(workers=6, warmup=0.25, duration=1.0, drain=1.0))
        metrics = driver.run()
        return app, driver, metrics

    def test_driver_produces_committed_checkouts(self, name):
        app, driver, metrics = self.run_driver(name)
        assert metrics.ops["checkout"].ok > 0
        assert metrics.total_throughput > 0

    def test_latency_percentiles_are_ordered(self, name):
        app, driver, metrics = self.run_driver(name)
        latency = metrics.ops["checkout"].latency
        assert latency["p50"] <= latency["p95"] <= latency["p99"]
        assert latency["min"] <= latency["p50"] <= latency["max"]

    def test_clean_run_passes_atomicity_and_integrity(self, name):
        app, driver, metrics = self.run_driver(name)
        report = audit_app(app, driver)
        assert report.results["C1-atomicity"].passed, \
            report.results["C1-atomicity"].details
        assert report.results["C3-integrity"].passed, \
            report.results["C3-integrity"].details

    def test_deterministic_given_seed(self, name):
        _, _, first = self.run_driver(name, seed=21)
        _, _, second = self.run_driver(name, seed=21)
        assert first.total_throughput == second.total_throughput
        assert first.ops["checkout"].ok == second.ops["checkout"].ok

    def test_different_seeds_differ(self, name):
        _, _, first = self.run_driver(name, seed=21)
        _, _, second = self.run_driver(name, seed=22)
        # Not a strict requirement op-by-op, but the runs must not be
        # byte-identical in aggregate.
        assert (first.ops["checkout"].ok != second.ops["checkout"].ok
                or first.total_throughput != second.total_throughput)


class TestCrossAppSemantics:
    """The paper's qualitative claims, checked under one nasty workload."""

    def run_all(self, drop=0.0, seed=29):
        results = {}
        mix = TransactionMix(checkout=60, price_update=18,
                             product_delete=4, update_delivery=6,
                             dashboard=12)
        for name in APP_NAMES:
            env = Environment(seed=seed)
            app = ALL_APPS[name](env, AppConfig(
                silos=2, cores_per_silo=2, drop_probability=drop))
            driver = BenchmarkDriver(
                env, app,
                WorkloadConfig(sellers=3, customers=16,
                               products_per_seller=4, mix=mix),
                DriverConfig(workers=8, warmup=0.25, duration=1.5,
                             drain=1.5))
            metrics = driver.run()
            results[name] = (metrics, audit_app(app, driver))
        return results

    def test_throughput_ranking_matches_paper(self):
        results = self.run_all()
        tput = {name: metrics.total_throughput
                for name, (metrics, _) in results.items()}
        assert tput["orleans-eventual"] > tput["statefun"]
        assert tput["statefun"] > tput["orleans-transactions"]
        # Statefun ~2x Orleans Transactions (allow a generous band).
        ratio = tput["statefun"] / tput["orleans-transactions"]
        assert 1.3 <= ratio <= 3.5, ratio
        # Customized is comparable to Orleans Transactions.
        ratio = (tput["customized-orleans"]
                 / tput["orleans-transactions"])
        assert 0.6 <= ratio <= 1.2, ratio

    def test_only_customized_meets_all_criteria(self):
        results = self.run_all()
        reports = {name: report for name, (_, report) in results.items()}
        assert reports["customized-orleans"].all_pass
        assert not reports["orleans-eventual"].all_pass
        assert not reports["orleans-transactions"].all_pass
        assert not reports["statefun"].all_pass

    def test_transactional_apps_keep_atomicity_under_message_loss(self):
        results = self.run_all(drop=0.02)
        for name in ("orleans-transactions", "customized-orleans"):
            report = results[name][1]
            assert report.results["C1-atomicity"].passed, (
                name, report.results["C1-atomicity"].details)

    def test_eventual_app_violates_atomicity_under_message_loss(self):
        results = self.run_all(drop=0.02)
        report = results["orleans-eventual"][1]
        assert not report.results["C1-atomicity"].passed
