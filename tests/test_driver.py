"""Unit tests for the benchmark driver lifecycle."""

import pytest

from _stub_app import StubApp
from repro.apps.base import ok
from repro.core import BenchmarkDriver, DriverConfig, WorkloadConfig
from repro.core.workload.config import TransactionMix
from repro.runtime import Environment


def make_driver(seed=1, mix=None, **driver_kwargs):
    env = Environment(seed=seed)
    app = StubApp(env)
    workload = WorkloadConfig(sellers=2, customers=10,
                              products_per_seller=4,
                              mix=mix or TransactionMix())
    driver_kwargs.setdefault("workers", 4)
    driver_kwargs.setdefault("warmup", 0.2)
    driver_kwargs.setdefault("duration", 1.0)
    driver_kwargs.setdefault("drain", 0.2)
    driver = BenchmarkDriver(env, app, workload,
                             DriverConfig(**driver_kwargs))
    return env, app, driver


class TestDriverConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(workers=0),
        dict(warmup=-1.0),
        dict(duration=0.0),
        dict(drain=-0.1),
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DriverConfig(**kwargs)


class TestLifecycle:
    def test_run_ingests_exactly_once(self):
        env, app, driver = make_driver()
        driver.run()
        assert app.dataset is driver.dataset

    def test_warmup_samples_not_recorded(self):
        env, app, driver = make_driver()
        metrics = driver.run()
        # Total ops executed > ops recorded (warm-up discarded).
        executed = sum(app.calls.values())
        recorded = sum(op.count for op in metrics.ops.values())
        assert executed > recorded > 0

    def test_all_operation_types_submitted(self):
        # The ingestion/return operations default to weight 0, so give
        # every operation a slice to prove all seven dispatch paths.
        mix = TransactionMix(checkout=50, price_update=12,
                             product_delete=2, update_delivery=10,
                             dashboard=10, submit_external=10,
                             request_return=6)
        env, app, driver = make_driver(duration=2.0, mix=mix)
        driver.run()
        for name, count in app.calls.items():
            assert count > 0, name

    def test_mix_weights_respected(self):
        mix = TransactionMix(checkout=100, price_update=0,
                             product_delete=0, update_delivery=0,
                             dashboard=0)
        env, app, driver = make_driver(mix=mix)
        driver.run()
        assert app.calls["checkout"] > 0
        assert app.calls["update_price"] == 0
        assert app.calls["dashboard"] == 0

    def test_think_time_slows_submission(self):
        _, app_fast, driver_fast = make_driver(seed=5)
        driver_fast.run()
        _, app_slow, driver_slow = make_driver(seed=5, think_time=0.05)
        driver_slow.run()
        assert sum(app_slow.calls.values()) < sum(app_fast.calls.values())

    def test_simulation_stops_after_drain(self):
        env, app, driver = make_driver(warmup=0.2, duration=1.0,
                                       drain=0.5)
        driver.run()
        assert env.now == pytest.approx(1.7)

    def test_metrics_reflect_recorder(self):
        env, app, driver = make_driver()
        metrics = driver.run()
        assert metrics.app == "stub"
        assert metrics.workers == 4
        checkout = metrics.ops["checkout"]
        assert checkout.ok == checkout.count
        assert checkout.latency["p50"] >= driver.app.op_latency


class TestInputSafety:
    def test_customers_never_shared_between_workers(self):
        """With more workers than customers, leases must prevent any
        concurrent checkout on the same cart."""
        env = Environment(seed=9)
        active = set()
        overlaps = []

        class Guard(StubApp):
            def checkout(self, customer_id, order_id, payment_method):
                if customer_id in active:
                    overlaps.append(customer_id)
                active.add(customer_id)
                result = yield from super().checkout(
                    customer_id, order_id, payment_method)
                active.discard(customer_id)
                return result

        app = Guard(env, op_latency=0.01)
        workload = WorkloadConfig(sellers=2, customers=3,
                                  products_per_seller=4)
        driver = BenchmarkDriver(env, app, workload,
                                 DriverConfig(workers=8, warmup=0.1,
                                              duration=1.0, drain=0.2))
        driver.run()
        assert overlaps == []

    def test_order_ids_unique(self):
        env = Environment(seed=9)
        seen = set()

        class Guard(StubApp):
            def checkout(self, customer_id, order_id, payment_method):
                assert order_id not in seen
                seen.add(order_id)
                result = yield from super().checkout(
                    customer_id, order_id, payment_method)
                return result

        app = Guard(env)
        workload = WorkloadConfig(sellers=2, customers=10,
                                  products_per_seller=4)
        BenchmarkDriver(env, app, workload,
                        DriverConfig(workers=4, warmup=0.1,
                                     duration=1.0, drain=0.2)).run()
        assert len(seen) > 10

    def test_deleted_products_leave_sampling_population(self):
        mix = TransactionMix(checkout=50, price_update=0,
                             product_delete=50, update_delivery=0,
                             dashboard=0)
        env, app, driver = make_driver(seed=11, mix=mix, duration=2.0)
        driver.run()
        # After the reserve pool is exhausted deletes are refused...
        assert driver.skipped["no_reserve"] > 0
        # ...and the sampling population never contains a deleted key.
        for seller_id, product_id in driver.registry.live_products():
            assert f"{seller_id}/{product_id}" not in app.deleted

    def test_observations_catch_injected_staleness(self):
        """If the app serves versions older than acknowledged ones, the
        driver must notice (this validates the C2 instrumentation)."""

        class StaleApp(StubApp):
            def add_item(self, customer_id, seller_id, product_id,
                         quantity, voucher_cents=0):
                yield from self._op("add_item")
                return ok("add_item", price_version=1)  # always stale

        env = Environment(seed=13)
        app = StaleApp(env)
        mix = TransactionMix(checkout=70, price_update=30,
                             product_delete=0, update_delivery=0,
                             dashboard=0)
        workload = WorkloadConfig(sellers=2, customers=10,
                                  products_per_seller=4, mix=mix)
        driver = BenchmarkDriver(env, app, workload,
                                 DriverConfig(workers=4, warmup=0.1,
                                              duration=2.0, drain=0.2))
        driver.run()
        assert driver.observations["stale_adds"] > 0

    def test_dashboard_mismatch_detected(self):
        class SkewApp(StubApp):
            def dashboard(self, seller_id):
                yield from self._op("dashboard")
                return ok("dashboard", amount_cents=100, entries=[],
                          entries_total_cents=0)

        env = Environment(seed=13)
        app = SkewApp(env)
        mix = TransactionMix(checkout=0, price_update=0,
                             product_delete=0, update_delivery=0,
                             dashboard=100)
        workload = WorkloadConfig(sellers=2, customers=10,
                                  products_per_seller=4, mix=mix)
        driver = BenchmarkDriver(env, app, workload,
                                 DriverConfig(workers=2, warmup=0.1,
                                              duration=0.5, drain=0.1))
        driver.run()
        assert driver.observations["dashboard_mismatches"] > 0
        assert driver.observations["dashboard_mismatches"] == \
            driver.observations["dashboards_checked"]
