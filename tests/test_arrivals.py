"""Unit tests for the open-loop arrival processes."""

import random

import pytest

from repro.core.driver.arrivals import (
    ConstantRate,
    PhasedArrivals,
    PoissonArrivals,
    RampArrivals,
    SinusoidArrivals,
)


def times(process, start=0.0, until=10.0, seed=1):
    return list(process.arrival_times(random.Random(seed), start, until))


class TestConstantRate:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            ConstantRate(0.0)

    def test_exact_spacing(self):
        arrivals = times(ConstantRate(10.0), until=1.0)
        assert len(arrivals) == 9  # 0.1 .. 0.9; 1.0 is excluded
        for index, at in enumerate(arrivals, start=1):
            assert at == pytest.approx(index * 0.1)

    def test_respects_start_offset(self):
        arrivals = times(ConstantRate(10.0), start=5.0, until=6.0)
        assert arrivals[0] == pytest.approx(5.1)
        assert all(5.0 < at < 6.0 for at in arrivals)

    def test_scaled(self):
        assert ConstantRate(10.0).scaled(2.0).rate == 20.0
        assert ConstantRate(10.0).mean_rate() == 10.0


class TestPoissonArrivals:
    def test_deterministic_under_seeded_rng(self):
        a = times(PoissonArrivals(50.0), seed=7)
        b = times(PoissonArrivals(50.0), seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        assert times(PoissonArrivals(50.0), seed=1) != \
            times(PoissonArrivals(50.0), seed=2)

    def test_mean_rate_within_tolerance(self):
        # 200/s over 50s -> ~10k arrivals; CLT bound ~ +-3% at 3 sigma.
        rate, horizon = 200.0, 50.0
        arrivals = times(PoissonArrivals(rate), until=horizon, seed=3)
        observed = len(arrivals) / horizon
        assert observed == pytest.approx(rate, rel=0.05)

    def test_strictly_inside_window(self):
        arrivals = times(PoissonArrivals(100.0), start=2.0, until=3.0)
        assert all(2.0 < at < 3.0 for at in arrivals)
        assert arrivals == sorted(arrivals)


class TestPhasedArrivals:
    def test_rejects_empty_or_bad_phases(self):
        with pytest.raises(ValueError):
            PhasedArrivals([])
        with pytest.raises(ValueError):
            PhasedArrivals([(0.0, ConstantRate(1.0))])

    def test_burst_phase_density(self):
        process = PhasedArrivals([
            (1.0, ConstantRate(10.0)),
            (1.0, ConstantRate(100.0)),
            (1.0, ConstantRate(10.0)),
        ])
        arrivals = times(process, until=3.0)
        calm_1 = [at for at in arrivals if at < 1.0]
        burst = [at for at in arrivals if 1.0 <= at < 2.0]
        calm_2 = [at for at in arrivals if at >= 2.0]
        assert len(calm_1) == 9
        assert len(burst) == 99  # the phase-start point is excluded
        assert len(calm_2) == 9

    def test_mean_rate_is_duration_weighted(self):
        process = PhasedArrivals([(3.0, ConstantRate(10.0)),
                                  (1.0, ConstantRate(50.0))])
        assert process.mean_rate() == pytest.approx(20.0)

    def test_last_phase_repeats_past_schedule(self):
        process = PhasedArrivals([(1.0, ConstantRate(10.0)),
                                  (1.0, ConstantRate(100.0))])
        arrivals = times(process, until=4.0)
        tail = [at for at in arrivals if at >= 2.0]
        assert len(tail) == pytest.approx(198, abs=4)

    def test_time_scaled_preserves_shape(self):
        # Rates stay fixed while the time axis shrinks: arrivals halve
        # but the burst's *share* of the window is preserved.
        process = PhasedArrivals([(1.0, ConstantRate(10.0)),
                                  (1.0, ConstantRate(100.0))])
        full = times(process, until=2.0)
        half = times(process.time_scaled(0.5), until=1.0)
        assert len(half) == pytest.approx(len(full) / 2, abs=2)
        burst_share_full = len([at for at in full if at >= 1.0]) \
            / len(full)
        burst_share_half = len([at for at in half if at >= 0.5]) \
            / len(half)
        assert burst_share_half == pytest.approx(burst_share_full,
                                                 abs=0.02)


class TestRampArrivals:
    def test_rate_interpolates_and_clamps(self):
        ramp = RampArrivals(10.0, 110.0, ramp_duration=10.0)
        assert ramp.rate_at(0.0) == 10.0
        assert ramp.rate_at(5.0) == 60.0
        assert ramp.rate_at(10.0) == 110.0
        assert ramp.rate_at(20.0) == 110.0  # holds past the ramp

    def test_density_increases_along_ramp(self):
        ramp = RampArrivals(20.0, 200.0, ramp_duration=10.0,
                            poisson=False)
        arrivals = times(ramp, until=10.0)
        first = len([at for at in arrivals if at < 2.0])
        last = len([at for at in arrivals if at >= 8.0])
        assert last > 3 * first

    def test_deterministic_under_seeded_rng(self):
        ramp = RampArrivals(20.0, 200.0, ramp_duration=5.0)
        assert times(ramp, until=5.0, seed=9) == \
            times(ramp, until=5.0, seed=9)

    def test_time_scaled_stretches_ramp(self):
        ramp = RampArrivals(10.0, 100.0, ramp_duration=4.0)
        stretched = ramp.time_scaled(0.5)
        assert stretched.ramp_duration == 2.0
        assert stretched.rate_at(2.0) == 100.0


class TestSinusoidArrivals:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SinusoidArrivals(0.0)
        with pytest.raises(ValueError):
            SinusoidArrivals(100.0, amplitude=1.0)
        with pytest.raises(ValueError):
            SinusoidArrivals(100.0, period=0.0)

    def test_rate_swings_around_the_base(self):
        wave = SinusoidArrivals(100.0, amplitude=0.5, period=4.0)
        assert wave.rate_at(0.0) == pytest.approx(100.0)
        assert wave.rate_at(1.0) == pytest.approx(150.0)  # crest
        assert wave.rate_at(3.0) == pytest.approx(50.0)   # trough
        assert wave.mean_rate() == 100.0

    def test_phase_shifts_the_crest(self):
        wave = SinusoidArrivals(100.0, amplitude=0.5, period=4.0,
                                phase=0.25)
        assert wave.rate_at(0.0) == pytest.approx(150.0)

    def test_density_follows_the_wave(self):
        wave = SinusoidArrivals(120.0, amplitude=0.8, period=8.0,
                                poisson=False)
        arrivals = times(wave, until=8.0)
        crest = len([at for at in arrivals if 1.0 <= at < 3.0])
        trough = len([at for at in arrivals if 5.0 <= at < 7.0])
        assert crest > 3 * trough

    def test_deterministic_under_seeded_rng(self):
        wave = SinusoidArrivals(80.0, amplitude=0.6, period=5.0)
        assert times(wave, until=5.0, seed=9) == \
            times(wave, until=5.0, seed=9)

    def test_scaled_and_time_scaled(self):
        wave = SinusoidArrivals(100.0, amplitude=0.5, period=4.0)
        assert wave.scaled(2.0).base_rate == 200.0
        stretched = wave.time_scaled(2.0)
        assert stretched.period == 8.0
        # The same fraction through the cycle gives the same rate.
        assert stretched.rate_at(2.0) == pytest.approx(
            wave.rate_at(1.0))
