"""Regression tests for ``tools/bench_trends.py``.

The trends tool runs in CI after the bench suite; it must degrade
gracefully when a snapshot directory has no ``BENCH_*.json`` files at
all, or when an interrupted run left a payload with ``rows: []``.
"""

import importlib.util
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_trends", ROOT / "tools" / "bench_trends.py")
bench_trends = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_trends)


def run_main(argv, capsys):
    code = bench_trends.main([str(arg) for arg in argv])
    out = capsys.readouterr()
    return code, out.out, out.err


class TestEmptyInputs:
    def test_directory_without_artifacts(self, tmp_path, capsys):
        code, out, _ = run_main([tmp_path], capsys)
        assert code == 0
        assert "No `BENCH_*.json` artifacts found" in out

    def test_known_bench_with_empty_rows(self, tmp_path, capsys):
        (tmp_path / "BENCH_P0_hotpath.json").write_text(json.dumps(
            {"bench": "p0_hotpath", "rows": []}))
        code, out, _ = run_main([tmp_path], capsys)
        assert code == 0
        assert "## p0_hotpath" in out
        assert "no rows recorded" in out
        # Header-only table still renders.
        assert "| duration_scale |" in out

    def test_unknown_bench_with_empty_rows(self, tmp_path, capsys):
        (tmp_path / "BENCH_custom.json").write_text(json.dumps(
            {"bench": "custom_probe", "rows": []}))
        code, out, _ = run_main([tmp_path], capsys)
        assert code == 0
        assert "## custom_probe" in out
        assert "no rows recorded" in out

    def test_empty_snapshot_next_to_populated_one(self, tmp_path, capsys):
        old = tmp_path / "old"
        new = tmp_path / "new"
        old.mkdir()
        new.mkdir()
        (old / "BENCH_probe.json").write_text(json.dumps(
            {"bench": "probe", "rows": [{"case": "a", "events": 10.0}]}))
        # The *newest* snapshot recorded nothing: layout must fall back
        # to the older populated one instead of indexing rows[0].
        (new / "BENCH_probe.json").write_text(json.dumps(
            {"bench": "probe", "rows": []}))
        code, out, _ = run_main([old, new], capsys)
        assert code == 0
        assert "| case |" in out
        assert "| a | 10 | — |" in out

    def test_malformed_json_skipped_with_warning(self, tmp_path, capsys):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        code, out, err = run_main([tmp_path], capsys)
        assert code == 0
        assert "warning: skipping" in err
        assert "No `BENCH_*.json` artifacts found" in out

    def test_missing_source_still_errors(self, tmp_path, capsys):
        code, _, err = run_main([tmp_path / "nope"], capsys)
        assert code == 2
        assert "does not exist" in err


class TestPopulatedSnapshots:
    def test_two_snapshots_align_rows(self, tmp_path, capsys):
        old = tmp_path / "pr3"
        old.mkdir()
        (old / "BENCH_P0_hotpath.json").write_text(json.dumps(
            {"bench": "p0_hotpath",
             "rows": [{"duration_scale": 0.5,
                       "events_per_wall_s": 1000.0,
                       "tx_per_wall_s": 100.0}]}))
        new = tmp_path / "pr4"
        new.mkdir()
        (new / "BENCH_P0_hotpath.json").write_text(json.dumps(
            {"bench": "p0_hotpath",
             "rows": [{"duration_scale": 0.5,
                       "events_per_wall_s": 2000.0,
                       "tx_per_wall_s": 150.0}]}))
        code, out, _ = run_main([old, new], capsys)
        assert code == 0
        assert "pr3 events/s" in out
        assert "pr4 events/s" in out
        assert "| 0.5 | 1,000 | 100 | 2,000 | 150 |" in out
