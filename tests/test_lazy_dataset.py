"""Lazy dataset, O(1) Zipf sampling and the virtual key registry.

The million-entity contract has three legs, each load-bearing for the
P2 scaling claim:

* :class:`LazyDataset` generates every record from a per-entity seeded
  RNG, so ANY touch order produces byte-identical records — and all of
  them agree with :meth:`LazyDataset.materialize`, the eager
  comparison path.  (The legacy eager generator's single sequential
  RNG stream is frozen for payload byte-identity; the lazy scheme
  shares its id/key/name layout, not its draws.)
* :class:`ApproxZipfSampler` replaces the O(n) CDF above
  ``EXACT_SAMPLER_MAX`` ranks; below it :func:`make_rank_sampler`
  returns the exact sampler with bit-identical draw sequences.
* :class:`VirtualProductKeyRegistry` reproduces the eager
  :class:`ProductKeyRegistry` — same rank bindings, same reserve
  consumption order, same refusals — in O(deletes) memory.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.workload.config import WorkloadConfig
from repro.core.workload.distributions import (
    EXACT_SAMPLER_MAX,
    ApproxZipfSampler,
    VirtualProductKeyRegistry,
    ZipfSampler,
    make_rank_sampler,
)
from repro.core.workload.generator import generate_dataset
from repro.core.workload.lazydataset import LazyDataset, entity_seed

SMALL = dict(sellers=3, customers=8, products_per_seller=4,
             reserve_fraction=0.5)


def small_config(**overrides) -> WorkloadConfig:
    return WorkloadConfig(**{**SMALL, **overrides})


# ---------------------------------------------------------------------------
# LazyDataset: touch-order independence and materialize agreement
# ---------------------------------------------------------------------------

class TestLazyDataset:
    def _touches(self, config: WorkloadConfig) -> list[tuple]:
        lazy = LazyDataset(config)
        touches = [("seller", i) for i in lazy.seller_ids]
        touches += [("customer", i) for i in lazy.customer_ids]
        for seller_id in lazy.seller_ids:
            base = (seller_id - 1) * lazy._block
            touches += [("product", seller_id, base + offset + 1)
                        for offset in range(lazy._block)]
        return touches

    def _touch(self, lazy: LazyDataset, touch: tuple):
        if touch[0] == "seller":
            return lazy.seller(touch[1])
        if touch[0] == "customer":
            return lazy.customer(touch[1])
        return (lazy.product(touch[1], touch[2]),
                lazy.stock_item(touch[1], touch[2]))

    @settings(max_examples=25, deadline=None)
    @given(data=st.data(), seed=st.integers(min_value=0, max_value=2**32))
    def test_touch_order_independent(self, data, seed):
        config = small_config()
        touches = self._touches(config)
        order = data.draw(st.permutations(touches))
        shuffled = LazyDataset(config, seed=seed)
        sequential = LazyDataset(config, seed=seed)
        by_touch = {touch: self._touch(shuffled, touch)
                    for touch in order}
        for touch in touches:
            assert by_touch[touch] == self._touch(sequential, touch)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32))
    def test_partial_touches_agree_with_materialize(self, seed):
        config = small_config()
        lazy = LazyDataset(config, seed=seed)
        # Touch a few records first, in a scattered order ...
        early_product = lazy.product(2, lazy._block + 1)
        early_seller = lazy.seller(3)
        # ... then materialise everything and check the early touches
        # are the same objects the eager build would have produced.
        eager = LazyDataset(config, seed=seed).materialize()
        assert early_product == eager.product_by_key(early_product.key)
        assert early_seller == eager.sellers[2]
        # And the full worlds agree record for record.
        full = lazy.materialize()
        assert full == eager

    def test_shares_eager_generator_layout(self):
        """Same ids, keys and name formats as the frozen eager path."""
        config = small_config()
        eager = generate_dataset(config, seed=9)
        lazy_world = LazyDataset(config, seed=9).materialize()
        assert [s.seller_id for s in lazy_world.sellers] == \
            [s.seller_id for s in eager.sellers]
        assert [c.customer_id for c in lazy_world.customers] == \
            [c.customer_id for c in eager.customers]
        assert [p.key for p in lazy_world.products] == \
            [p.key for p in eager.products]
        assert [p.key for p in lazy_world.reserve_products] == \
            [p.key for p in eager.reserve_products]
        assert [p.name for p in lazy_world.products] == \
            [p.name for p in eager.products]
        assert set(lazy_world.stock) == set(eager.stock)

    def test_generate_dataset_dispatches_on_config(self):
        lazy = generate_dataset(small_config(lazy_dataset=True), seed=4)
        assert lazy.lazy and isinstance(lazy, LazyDataset)
        eager = generate_dataset(small_config(), seed=4)
        assert not eager.lazy

    def test_product_by_key(self):
        lazy = LazyDataset(small_config(), seed=1)
        product = lazy.product_by_key("2/7")
        assert product is not None
        assert (product.seller_id, product.product_id) == (2, 7)
        assert lazy.product_by_key("2/7") is product  # memoised
        assert lazy.product_by_key("99/1") is None
        assert lazy.product_by_key("not-a-key") is None

    def test_out_of_range_touches_raise(self):
        lazy = LazyDataset(small_config(), seed=1)
        for call in (lambda: lazy.seller(0), lambda: lazy.seller(4),
                     lambda: lazy.customer(9),
                     lambda: lazy.product(1, lazy._block + 1),
                     lambda: lazy.stock_item(4, 1)):
            try:
                call()
            except KeyError:
                continue
            raise AssertionError("expected KeyError")

    def test_all_products_refuses_enumeration(self):
        lazy = LazyDataset(small_config(), seed=1)
        try:
            lazy.all_products()
        except RuntimeError:
            pass
        else:
            raise AssertionError("expected RuntimeError")

    def test_summary_tracks_touched_set(self):
        lazy = LazyDataset(small_config(), seed=1)
        assert lazy.summary()["touched_products"] == 0
        lazy.product(1, 1)
        lazy.seller(2)
        summary = lazy.summary()
        assert summary["touched_products"] == 1
        assert summary["touched_sellers"] == 1
        assert summary["products"] == 12
        assert summary["customers"] == 8

    def test_entity_seed_is_stable_and_distinct(self):
        assert entity_seed(1, "product", "2/7") == \
            entity_seed(1, "product", "2/7")
        assert entity_seed(1, "product", "2/7") != \
            entity_seed(2, "product", "2/7")
        assert entity_seed(1, "product", "2/7") != \
            entity_seed(1, "seller", "2/7")


# ---------------------------------------------------------------------------
# O(1) Zipf sampling
# ---------------------------------------------------------------------------

class TestApproxZipf:
    def test_factory_is_exact_below_threshold(self):
        rng_a, rng_b = random.Random(5), random.Random(5)
        factory = make_rank_sampler(EXACT_SAMPLER_MAX, 0.9, rng_a)
        exact = ZipfSampler(EXACT_SAMPLER_MAX, 0.9, rng_b)
        assert isinstance(factory, ZipfSampler)
        assert [factory.sample() for _ in range(500)] == \
            [exact.sample() for _ in range(500)]

    def test_factory_is_approximate_above_threshold(self):
        sampler = make_rank_sampler(EXACT_SAMPLER_MAX + 1, 0.9,
                                    random.Random(5))
        assert isinstance(sampler, ApproxZipfSampler)

    def test_samples_in_range_at_scale(self):
        n = 1_000_000
        for s in (0.5, 0.8, 1.0, 1.3):
            sampler = ApproxZipfSampler(n, s, random.Random(7))
            ranks = [sampler.sample() for _ in range(2000)]
            assert all(0 <= rank < n for rank in ranks)
            # The head is over-represented by roughly its pmf mass
            # (under uniform the top-100 share would be 1e-4).
            head_share = sum(rank < 100 for rank in ranks) / len(ranks)
            expected = sum(sampler.probability(rank) for rank in range(100))
            assert expected > 100 / n * 10
            assert abs(head_share - expected) < 0.05

    def test_pmf_matches_exact_distribution(self):
        """probability(rank) stays within 1e-4 relative error of the
        exact normalised Zipf pmf (measured bound is ~3e-7)."""
        n, s = 100_000, 0.8
        sampler = ApproxZipfSampler(n, s, random.Random(1))
        total = sum((rank + 1) ** -s for rank in range(n))
        for rank in (0, 1, 63, 64, 1000, 99_999):
            exact_p = (rank + 1) ** -s / total
            approx_p = sampler.probability(rank)
            assert abs(approx_p - exact_p) / exact_p < 1e-4

    def test_empirical_head_frequency(self):
        n, s = 50_000, 1.0
        sampler = ApproxZipfSampler(n, s, random.Random(3))
        draws = 20_000
        hits = sum(sampler.sample() == 0 for _ in range(draws))
        expected = sampler.probability(0)
        observed = hits / draws
        assert abs(observed - expected) < 0.02


# ---------------------------------------------------------------------------
# VirtualProductKeyRegistry vs the eager registry
# ---------------------------------------------------------------------------

class TestVirtualRegistry:
    def _pair(self, config: WorkloadConfig):
        lazy = LazyDataset(config, seed=2)
        return lazy.make_registry(), lazy.materialize().make_registry()

    def test_initial_bindings_match(self):
        virtual, eager = self._pair(small_config())
        assert len(virtual) == len(eager)
        for rank in range(len(eager)):
            assert virtual.product_at(rank) == eager.product_at(rank)
            assert virtual.rank_of(eager.product_at(rank)) == rank
            assert virtual.is_live(eager.product_at(rank))
        assert virtual.reserve_remaining == eager.reserve_remaining
        assert virtual.live_products() == eager.live_products()

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_delete_sequences_match(self, data):
        config = small_config(reserve_fraction=0.5)
        virtual, eager = self._pair(config)
        # Delete more than the reserve can cover so refusals happen too.
        deletes = data.draw(st.lists(
            st.integers(min_value=0, max_value=len(eager) - 1),
            min_size=1, max_size=len(eager)))
        for rank in deletes:
            assert virtual.delete_at(rank) == eager.delete_at(rank)
        assert virtual.deletes == eager.deletes
        assert virtual.refused_deletes == eager.refused_deletes
        assert virtual.reserve_remaining == eager.reserve_remaining
        for rank in range(len(eager)):
            assert virtual.product_at(rank) == eager.product_at(rank)
            key = eager.product_at(rank)
            assert virtual.rank_of(key) == eager.rank_of(key)
            assert virtual.is_live(key) == eager.is_live(key)

    def test_memory_is_o_deletes(self):
        """A million-rank registry costs nothing until deletes happen."""
        registry = VirtualProductKeyRegistry(1000, 1000, 100)
        assert len(registry) == 1_000_000
        # Product ids are globally sequential per-seller blocks of
        # 1000 live + 100 reserve, matching the eager generator.
        assert registry.product_at(0) == (1, 1)
        assert registry.product_at(999_999) == (1000, 999 * 1100 + 1000)
        mid = registry.product_at(550_000)
        assert registry.rank_of(mid) == 550_000
        assert registry.is_live(mid)
        before = len(registry._rebound)
        registry.delete_at(123_456)
        assert len(registry._rebound) == before + 1
