"""Kernel round-2 invariants: batched timeline, event pool, run(until=...).

The dispatch loop now interleaves a same-tick bucket with the binary
heap and drains same-``(time, priority)`` heap runs in a batch.  None
of that may change the kernel's contract: events are processed in
strict ``(time, priority, sequence)`` order, where sequence is
schedule-call order.  The property tests here compare the real kernel
against a pure-``heapq`` reference model over randomly generated
schedules, including events scheduled from inside callbacks (the
bucket path) and non-normal priorities (the preemption path).
"""

from __future__ import annotations

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Environment, SimulationError
from repro.runtime.events import PENDING, Event, PooledEvent

# Coarse delay grid so that generated schedules collide on the same
# timestamp often — collisions are exactly what the batched drain and
# the bucket/heap ordering guard have to get right.
_delays = st.sampled_from([0.0, 0.5, 1.0, 1.5])
# 0 preempts (interrupts), 1 is normal, 2 is a hypothetical laggard.
_priorities = st.sampled_from([0, 1, 2])
_specs = st.tuples(_delays, _priorities)

#: Root schedules plus per-root follow-up schedules issued from inside
#: the root's callback (exercising mid-dispatch scheduling).
_schedules = st.lists(
    st.tuples(_specs, st.lists(_specs, max_size=3)),
    min_size=1, max_size=12)


def _reference_order(roots) -> list:
    """Dispatch order per a plain single-heap kernel (the old one)."""
    heap: list[tuple[float, int, int, object]] = []
    order = []
    seq = 0

    def push(now: float, label, spec) -> None:
        nonlocal seq
        seq += 1
        delay, priority = spec
        heapq.heappush(heap, (now + delay, priority, seq, label))

    for index, (spec, _followups) in enumerate(roots):
        push(0.0, index, spec)
    while heap:
        now, _, _, label = heapq.heappop(heap)
        order.append(label)
        if isinstance(label, int):
            for sub, spec in enumerate(roots[label][1]):
                push(now, (label, sub), spec)
    return order


def _kernel_order(roots) -> list:
    """Dispatch order from the real Environment for the same schedule."""
    env = Environment()
    order = []

    def schedule(label, spec, followups) -> None:
        event = Event(env)
        event._value = None  # pre-triggered: fires when dispatched

        def record(_event, label=label, followups=followups):
            order.append(label)
            for sub, sub_spec in enumerate(followups):
                schedule((label, sub), sub_spec, ())

        event.callbacks.append(record)
        delay, priority = spec
        env.schedule(event, delay, priority)

    for index, (spec, followups) in enumerate(roots):
        schedule(index, spec, followups)
    env.run()
    return order


@settings(max_examples=200, deadline=None)
@given(_schedules)
def test_batched_dispatch_matches_heap_reference(roots):
    assert _kernel_order(roots) == _reference_order(roots)


@settings(max_examples=100, deadline=None)
@given(_schedules, st.floats(min_value=0.0, max_value=2.0))
def test_batched_dispatch_respects_until(roots, stop_time):
    """run(until=t) processes exactly the reference prefix with time <= t."""
    env = Environment()
    order = []

    def schedule(label, spec, followups) -> None:
        event = Event(env)
        event._value = None

        def record(_event, label=label, followups=followups):
            order.append(label)
            for sub, sub_spec in enumerate(followups):
                schedule((label, sub), sub_spec, ())

        event.callbacks.append(record)
        delay, priority = spec
        env.schedule(event, delay, priority)

    for index, (spec, followups) in enumerate(roots):
        schedule(index, spec, followups)
    env.run(until=stop_time)
    assert env.now == stop_time

    reference = _reference_order(roots)
    # Re-derive each reference label's firing time to cut the prefix.
    times: dict = {}
    heap: list = []
    seq = 0

    def push(now, label, spec):
        nonlocal seq
        seq += 1
        heapq.heappush(heap, (now + spec[0], spec[1], seq, label))

    for index, (spec, _f) in enumerate(roots):
        push(0.0, index, spec)
    while heap:
        now, _, _, label = heapq.heappop(heap)
        times[label] = now
        if isinstance(label, int):
            for sub, spec in enumerate(roots[label][1]):
                push(now, (label, sub), spec)
    expected = [label for label in reference if times[label] <= stop_time]
    assert order == expected


# ---------------------------------------------------------------------------
# Event free-list safety
# ---------------------------------------------------------------------------
def test_pooled_event_is_pristine_after_release():
    """A recycled event carries nothing over from its previous life."""
    env = Environment()
    fired = []
    env.call_after(0.0, fired.append)
    env.run()
    assert len(fired) == 1
    used = fired[0]
    assert type(used) is PooledEvent

    recycled = env.acquire_event()
    assert recycled is used  # the free-list actually recycles
    assert recycled.callbacks == []  # no stale callbacks
    assert not recycled.triggered  # value reset to PENDING
    assert recycled._value is PENDING
    assert recycled.ok and not recycled.defused


def test_pooled_event_reuse_does_not_refire_old_callbacks():
    env = Environment()
    calls = []
    env.call_after(0.0, lambda _event: calls.append("first"))
    env.run()
    env.call_after(0.0, lambda _event: calls.append("second"))
    env.run()
    assert calls == ["first", "second"]


def test_failed_pooled_event_resets_failure_state():
    env = Environment()
    event = env.acquire_event()
    event.fail(RuntimeError("boom"))
    event.defuse()
    env.run()
    recycled = env.acquire_event()
    assert recycled is event
    assert recycled.ok and not recycled.defused and not recycled.triggered
    # ...and reusing it succeeds cleanly.
    recycled.succeed("fine")
    env.run()


def test_pool_is_bounded():
    from repro.runtime.environment import _POOL_MAX

    env = Environment()
    for _ in range(_POOL_MAX + 100):
        env.call_after(0.0, lambda _event: None)
    env.run()
    assert len(env._pool) <= _POOL_MAX


# ---------------------------------------------------------------------------
# run(until=<failed event>) regression pins
# ---------------------------------------------------------------------------
def test_run_until_failing_event_defuses_and_reraises():
    env = Environment()
    event = env.event()

    def failer():
        yield env.timeout(0.1)
        event.fail(RuntimeError("boom"))

    env.process(failer())
    with pytest.raises(RuntimeError, match="boom"):
        env.run(until=event)
    # Defused by the stop-event hook: no SimulationError afterwards.
    assert event.defused
    env.run()


def test_run_until_already_processed_failed_event_reraises():
    """until= an event that failed *in an earlier run* still raises.

    The failure was defused back then (someone handled it), but asking
    to run until that event is an explicit read of its outcome — the
    caller must see the original exception, not ``None``.
    """
    env = Environment()
    event = env.event()
    event.fail(RuntimeError("boom"))
    event.defuse()
    env.run()  # processes the (defused) failure without raising
    assert event.processed and not event.ok

    with pytest.raises(RuntimeError, match="boom"):
        env.run(until=event)
    # And it stays repeatable — the event is not consumed.
    with pytest.raises(RuntimeError, match="boom"):
        env.run(until=event)


def test_run_until_undefused_failed_event_is_handled_not_crashed():
    """run(until=ev) counts as handling ev's failure at dispatch time."""
    env = Environment()
    event = env.event()
    event.fail(RuntimeError("boom"))
    # No defuse here: without the until= hook this dispatch would
    # surface SimulationError; with it, the original exception arrives.
    with pytest.raises(RuntimeError, match="boom"):
        env.run(until=event)


def test_unhandled_failed_event_still_raises_simulation_error():
    env = Environment()
    env.event().fail(RuntimeError("boom"))
    with pytest.raises(SimulationError):
        env.run()
