"""Unit tests for the virtual-actor runtime."""

import pytest

from repro.actors import (
    Cluster,
    ClusterConfig,
    ConsistentHashPlacement,
    Grain,
    GrainCallError,
    MemoryGrainStorage,
)
from repro.actors.errors import MessageDropped, UnknownGrainType
from repro.runtime import Environment


class Counter(Grain):
    """Minimal stateful grain used across tests."""

    cpu_cost = 0.0001

    def __init__(self):
        super().__init__()
        self.value = 0

    def increment(self, by=1):
        self.value += by
        return self.value
        yield  # pragma: no cover - generator marker

    def get(self):
        return self.value
        yield  # pragma: no cover - generator marker


class Greeter(Grain):
    def greet(self, name):
        yield self.env.timeout(0.001)
        return f"hello {name} from {self.key}"


class Relay(Grain):
    """Calls another grain (for inter-grain messaging tests)."""

    def forward(self, target_key, by):
        ref = self.grain_ref(Counter, target_key)
        result = yield self.call(ref, "increment", by)
        return result


def make_cluster(seed=1, **config_kwargs):
    env = Environment(seed=seed)
    cluster = Cluster(env, ClusterConfig(**config_kwargs))
    return env, cluster


def call_sync(env, ref, method, *args, **kwargs):
    promise = ref.call(method, *args, **kwargs)
    return env.run(until=promise)


def test_grain_call_returns_method_result():
    env, cluster = make_cluster()
    ref = cluster.grain_ref(Greeter, "g1")
    assert call_sync(env, ref, "greet", "world") == "hello world from g1"


def test_grain_state_persists_across_calls():
    env, cluster = make_cluster()
    ref = cluster.grain_ref(Counter, "c1")
    assert call_sync(env, ref, "increment") == 1
    assert call_sync(env, ref, "increment", 5) == 6
    assert call_sync(env, ref, "get") == 6


def test_different_keys_are_different_activations():
    env, cluster = make_cluster()
    a = cluster.grain_ref(Counter, "a")
    b = cluster.grain_ref(Counter, "b")
    call_sync(env, a, "increment")
    assert call_sync(env, b, "get") == 0


def test_activation_created_on_demand_once():
    env, cluster = make_cluster()
    ref = cluster.grain_ref(Counter, "x")
    assert cluster.total_activations == 0
    call_sync(env, ref, "increment")
    assert cluster.total_activations == 1
    call_sync(env, ref, "increment")
    assert cluster.total_activations == 1


def test_unknown_method_fails_call():
    env, cluster = make_cluster()
    ref = cluster.grain_ref(Counter, "x")
    with pytest.raises(GrainCallError):
        call_sync(env, ref, "no_such_method")


def test_exception_in_method_propagates_to_caller():
    class Exploder(Grain):
        def boom(self):
            raise ValueError("bang")
            yield  # pragma: no cover

    env, cluster = make_cluster()
    ref = cluster.grain_ref(Exploder, "x")
    with pytest.raises(ValueError, match="bang"):
        call_sync(env, ref, "boom")


def test_grain_failure_does_not_kill_activation():
    class Flaky(Grain):
        def __init__(self):
            super().__init__()
            self.calls = 0

        def work(self):
            self.calls += 1
            if self.calls == 1:
                raise RuntimeError("first call fails")
            return self.calls
            yield  # pragma: no cover

    env, cluster = make_cluster()
    ref = cluster.grain_ref(Flaky, "x")
    with pytest.raises(RuntimeError):
        call_sync(env, ref, "work")
    assert call_sync(env, ref, "work") == 2


def test_inter_grain_call():
    env, cluster = make_cluster()
    relay = cluster.grain_ref(Relay, "r")
    assert call_sync(env, relay, "forward", "c9", 7) == 7
    counter = cluster.grain_ref(Counter, "c9")
    assert call_sync(env, counter, "get") == 7


def test_nonreentrant_grain_serialises_messages():
    class Slow(Grain):
        def __init__(self):
            super().__init__()
            self.active = 0
            self.max_active = 0

        def work(self):
            self.active += 1
            self.max_active = max(self.max_active, self.active)
            yield self.env.timeout(0.01)
            self.active -= 1
            return self.max_active

    env, cluster = make_cluster()
    ref = cluster.grain_ref(Slow, "s")
    promises = [ref.call("work") for _ in range(5)]
    for promise in promises:
        env.run(until=promise)
    assert call_sync(env, ref, "work") == 1


def test_reentrant_grain_interleaves_messages():
    class SlowReentrant(Grain):
        reentrant = True

        def __init__(self):
            super().__init__()
            self.active = 0
            self.max_active = 0

        def work(self):
            self.active += 1
            self.max_active = max(self.max_active, self.active)
            yield self.env.timeout(0.01)
            self.active -= 1
            return self.max_active

    env, cluster = make_cluster()
    ref = cluster.grain_ref(SlowReentrant, "s")
    promises = [ref.call("work") for _ in range(5)]
    for promise in promises:
        env.run(until=promise)
    assert call_sync(env, ref, "work") > 1


def test_cpu_cost_charged_on_silo():
    env, cluster = make_cluster(silos=1, cores_per_silo=1)

    class Heavy(Grain):
        cpu_cost = 0.5

        def work(self):
            return "done"
            yield  # pragma: no cover

    ref = cluster.grain_ref(Heavy, "h")
    call_sync(env, ref, "work")
    assert env.now >= 0.5


def test_single_core_silo_queues_work():
    env, cluster = make_cluster(silos=1, cores_per_silo=1)

    class Busy(Grain):
        cpu_cost = 0.1

        def work(self):
            return self.env.now
            yield  # pragma: no cover

    # Two different grains on the same silo contend for its single core.
    a = cluster.grain_ref(Busy, "a")
    b = cluster.grain_ref(Busy, "b")
    pa = a.call("work")
    pb = b.call("work")
    env.run(until=pa)
    env.run(until=pb)
    finish_times = sorted([pa.value, pb.value])
    assert finish_times[1] - finish_times[0] >= 0.1


def test_grain_storage_roundtrip():
    class Durable(Grain):
        storage_name = "default"

        def set(self, value):
            self.state["value"] = value
            yield from self.write_state()
            return True

        def get(self):
            return self.state.get("value")
            yield  # pragma: no cover

    env, cluster = make_cluster()
    ref = cluster.grain_ref(Durable, "d1")
    call_sync(env, ref, "set", 42)
    # Deactivate, then reactivate: state must be reloaded from storage.
    silo = cluster.silo_for(ref)
    assert silo.deactivate("Durable", "d1")
    assert call_sync(env, ref, "get") == 42


def test_clear_state_removes_persisted_state():
    class Durable(Grain):
        storage_name = "default"

        def set(self, value):
            self.state["value"] = value
            yield from self.write_state()

        def wipe(self):
            yield from self.clear_state()

        def get(self):
            return self.state.get("value")
            yield  # pragma: no cover

    env, cluster = make_cluster()
    ref = cluster.grain_ref(Durable, "d1")
    call_sync(env, ref, "set", 1)
    call_sync(env, ref, "wipe")
    silo = cluster.silo_for(ref)
    silo.deactivate("Durable", "d1")
    assert call_sync(env, ref, "get") is None


def test_on_activate_runs_before_first_message():
    class Warm(Grain):
        def __init__(self):
            super().__init__()
            self.activated_at = None

        def on_activate(self):
            self.activated_at = self.env.now
            yield self.env.timeout(0.005)

        def probe(self):
            return self.activated_at
            yield  # pragma: no cover

    env, cluster = make_cluster()
    ref = cluster.grain_ref(Warm, "w")
    assert call_sync(env, ref, "probe") is not None


def test_string_grain_ref_requires_registration():
    env, cluster = make_cluster()
    with pytest.raises(UnknownGrainType):
        cluster.grain_ref("Counter", "x")
    cluster.register_grain(Counter)
    ref = cluster.grain_ref("Counter", "x")
    assert call_sync(env, ref, "increment") == 1


def test_grain_ref_equality_and_hash():
    env, cluster = make_cluster()
    a1 = cluster.grain_ref(Counter, "a")
    a2 = cluster.grain_ref(Counter, "a")
    b = cluster.grain_ref(Counter, "b")
    assert a1 == a2
    assert a1 != b
    assert len({a1, a2, b}) == 2


def test_message_drop_fails_call():
    env, cluster = make_cluster(drop_probability=1.0)
    ref = cluster.grain_ref(Counter, "x")
    with pytest.raises(MessageDropped):
        call_sync(env, ref, "increment")
    assert cluster.messages_dropped == 1


def test_tell_swallows_drop_failures():
    env, cluster = make_cluster(drop_probability=1.0)
    ref = cluster.grain_ref(Counter, "x")
    ref.tell("increment")
    env.run()  # must not raise


def test_placement_is_deterministic():
    env1, cluster1 = make_cluster(seed=1)
    env2, cluster2 = make_cluster(seed=2)
    for key in ("a", "b", "c", "d"):
        silo1 = cluster1.silo_for(cluster1.grain_ref(Counter, key))
        silo2 = cluster2.silo_for(cluster2.grain_ref(Counter, key))
        assert silo1.name == silo2.name


def test_placement_spreads_keys_across_silos():
    env, cluster = make_cluster(silos=4)
    names = {cluster.silo_for(cluster.grain_ref(Counter, f"k{i}")).name
             for i in range(200)}
    assert len(names) == 4


def test_consistent_hash_remove_silo_moves_few_keys():
    placement = ConsistentHashPlacement()

    class FakeSilo:
        def __init__(self, name):
            self.name = name

    silos = [FakeSilo(f"s{i}") for i in range(4)]
    for silo in silos:
        placement.add_silo(silo)
    before = {f"k{i}": placement.place("T", f"k{i}").name
              for i in range(400)}
    placement.remove_silo(silos[0])
    moved = sum(
        1 for key, name in before.items()
        if name != "s0" and placement.place("T", key.split(":")[-1]
                                            if ":" in key else key).name
        != name)
    # Keys not on the removed silo must not move.
    assert moved == 0


def test_storage_peek_and_keys():
    env = Environment()
    storage = MemoryGrainStorage(env, "s")

    def scenario():
        yield from storage.write("T", "k", {"a": 1})

    env.process(scenario())
    env.run()
    assert storage.peek("T", "k") == {"a": 1}
    assert storage.keys() == [("T", "k")]
    assert storage.peek("T", "missing") is None


def test_storage_deep_copies_state():
    env = Environment()
    storage = MemoryGrainStorage(env, "s")
    original = {"items": [1, 2]}

    def scenario():
        yield from storage.write("T", "k", original)
        loaded = yield from storage.read("T", "k")
        return loaded

    process = env.process(scenario())
    env.run()
    loaded = process.value
    loaded["items"].append(3)
    assert storage.peek("T", "k") == {"items": [1, 2]}


def test_utilisation_reporting():
    env, cluster = make_cluster(silos=2)
    usage = cluster.utilisation()
    assert set(usage) == {"silo-0", "silo-1"}
    assert all(value == 0.0 for value in usage.values())


class TestTimers:
    def test_timer_ticks_through_mailbox(self):
        class Ticker(Grain):
            def __init__(self):
                super().__init__()
                self.ticks = []

            def on_activate(self):
                self.register_timer(0.1, "tick")

            def tick(self):
                self.ticks.append(self.env.now)
                return None
                yield  # pragma: no cover

            def count(self):
                return len(self.ticks)
                yield  # pragma: no cover

        env, cluster = make_cluster()
        ref = cluster.grain_ref(Ticker, "t")
        call_sync(env, ref, "count")  # activate
        env.run(until=1.05)
        promise = ref.call("count")
        assert env.run(until=promise) == 10

    def test_timer_stops_after_deactivation(self):
        class Ticker(Grain):
            def __init__(self):
                super().__init__()
                self.ticks = 0

            def on_activate(self):
                self.register_timer(0.1, "tick")

            def tick(self):
                self.ticks += 1
                return None
                yield  # pragma: no cover

        env, cluster = make_cluster()
        ref = cluster.grain_ref(Ticker, "t")
        grain = cluster.grain_instance(ref)
        env.run(until=0.35)
        cluster.silo_for(ref).deactivate("Ticker", "t")
        ticks_at_deactivation = grain.ticks
        env.run(until=2.0)
        assert grain.ticks == ticks_at_deactivation

    def test_invalid_timer_interval_rejected(self):
        env, cluster = make_cluster()
        ref = cluster.grain_ref(Counter, "c")
        grain = cluster.grain_instance(ref)
        with pytest.raises(ValueError):
            grain.register_timer(0.0, "increment")


class TestIdleCollection:
    class Durable(Grain):
        storage_name = "default"

        def bump(self):
            self.state["n"] = self.state.get("n", 0) + 1
            return self.state["n"]
            yield  # pragma: no cover

    def test_idle_activation_collected_and_state_persisted(self):
        env, cluster = make_cluster()
        cluster.enable_idle_collection(max_age=0.5, sweep_interval=0.25)
        ref = cluster.grain_ref(self.Durable, "d")
        assert call_sync(env, ref, "bump") == 1
        env.run(until=env.now + 2.0)
        assert cluster.total_activations == 0
        assert cluster.collections == 1
        # Transparent re-activation restores the persisted state.
        assert call_sync(env, ref, "bump") == 2

    def test_busy_activation_not_collected(self):
        class Chatty(Grain):
            def ping(self):
                return self.env.now
                yield  # pragma: no cover

        env, cluster = make_cluster()
        cluster.enable_idle_collection(max_age=0.5, sweep_interval=0.25)
        ref = cluster.grain_ref(Chatty, "c")

        def keep_busy():
            for _ in range(20):
                promise = ref.call("ping")
                yield promise
                yield env.timeout(0.1)

        process = env.process(keep_busy())
        env.run(until=process)
        assert cluster.total_activations == 1

    def test_invalid_collection_parameters_rejected(self):
        env, cluster = make_cluster()
        with pytest.raises(ValueError):
            cluster.enable_idle_collection(max_age=0.0)
        with pytest.raises(ValueError):
            cluster.enable_idle_collection(max_age=1.0, sweep_interval=0)

    def test_message_during_deactivation_aborts_and_hook_runs_once(self):
        """A call arriving while on_deactivate/persist yields must not
        be lost: the deactivation aborts, the message is served, and a
        later sweep deactivates without re-running the hook."""
        class SlowFarewell(Grain):
            storage_name = "default"
            hook_runs = 0

            def on_deactivate(self):
                type(self).hook_runs += 1
                yield self.env.timeout(0.02)

            def bump(self):
                self.state["n"] = self.state.get("n", 0) + 1
                return self.state["n"]
                yield  # pragma: no cover

        env, cluster = make_cluster()
        cluster.enable_idle_collection(max_age=0.5, sweep_interval=0.25)
        ref = cluster.grain_ref(SlowFarewell, "f")
        assert call_sync(env, ref, "bump") == 1
        # The first collecting sweep fires at t=0.75 and spends 20ms in
        # the hook; land a call inside that window.
        def intruder():
            yield env.timeout(0.76)
            result = yield ref.call("bump")
            return result

        process = env.process(intruder())
        assert env.run(until=process) == 2  # served, not lost
        env.run(until=2.0)  # a later sweep completes the deactivation
        assert cluster.total_activations == 0
        assert cluster.collections == 1
        assert SlowFarewell.hook_runs == 1
        assert cluster.storage("default").peek("SlowFarewell", "f") == \
            {"n": 2}  # the slipped-in bump made it into the persist

    def test_collection_roundtrip_through_storage(self):
        """The virtual-actor lifecycle end to end: state written at
        idle collection is exactly what storage holds, and the next
        call reads it back transparently (fresh activation, same
        state)."""
        env, cluster = make_cluster()
        cluster.enable_idle_collection(max_age=0.5, sweep_interval=0.25)
        ref = cluster.grain_ref(self.Durable, "d")
        for expected in (1, 2, 3):
            assert call_sync(env, ref, "bump") == expected
        first_grain = cluster.grain_instance(ref)
        storage = cluster.storage("default")
        writes_before = storage.writes
        env.run(until=env.now + 2.0)  # idle long enough to collect
        assert cluster.collections == 1
        # Collection persisted the grain's full state dict.
        assert storage.peek("Durable", "d") == {"n": 3}
        assert storage.writes == writes_before + 1
        # The next call re-activates: a *new* grain instance whose
        # state came back from storage via a read.
        reads_before = storage.reads
        assert call_sync(env, ref, "bump") == 4
        assert storage.reads == reads_before + 1
        assert cluster.grain_instance(ref) is not first_grain
