"""Unit tests for the streaming (log-bucket) latency histogram."""

import random

import pytest

from repro.analysis.stats import describe, percentile
from repro.core.driver.metrics import LatencyRecorder, StreamingHistogram

#: One bucket spans a 4% ratio, so any in-range estimate is within
#: ~5% relative error of the exact sample percentile.
RESOLUTION = 0.05


class TestStreamingHistogram:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingHistogram(min_value=0.0)
        with pytest.raises(ValueError):
            StreamingHistogram(growth=1.0)
        with pytest.raises(ValueError):
            StreamingHistogram(buckets=0)
        with pytest.raises(ValueError):
            StreamingHistogram().percentile(101)

    def test_empty(self):
        histogram = StreamingHistogram()
        assert len(histogram) == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(50) == 0.0
        assert histogram.describe()["count"] == 0

    def test_count_mean_min_max_exact(self):
        histogram = StreamingHistogram()
        values = [0.004, 0.002, 0.009, 0.0001, 1.7]
        for value in values:
            histogram.add(value)
        summary = histogram.describe()
        assert summary["count"] == len(values)
        assert summary["mean"] == pytest.approx(sum(values) / len(values))
        assert summary["min"] == min(values)
        assert summary["max"] == max(values)

    def test_single_value_percentiles_exact(self):
        histogram = StreamingHistogram()
        histogram.add(0.004)
        for q in (0, 50, 95, 99, 100):
            assert histogram.percentile(q) == 0.004

    def test_percentile_error_bound_vs_exact(self):
        rng = random.Random(11)
        values = [rng.uniform(0.0005, 2.0) for _ in range(5000)]
        histogram = StreamingHistogram()
        for value in values:
            histogram.add(value)
        for q in (50, 90, 95, 99):
            exact = percentile(values, q)
            approx = histogram.percentile(q)
            assert approx == pytest.approx(exact, rel=RESOLUTION), q

    def test_lognormal_percentile_error_bound(self):
        rng = random.Random(13)
        values = [rng.lognormvariate(-5.0, 1.0) for _ in range(5000)]
        histogram = StreamingHistogram()
        for value in values:
            histogram.add(value)
        for q in (50, 95, 99):
            exact = percentile(values, q)
            assert histogram.percentile(q) == pytest.approx(
                exact, rel=RESOLUTION), q

    def test_out_of_range_values_clamp(self):
        histogram = StreamingHistogram(min_value=1e-3, buckets=10)
        histogram.add(1e-9)     # below the first bucket
        histogram.add(5.0)      # beyond the last bucket
        histogram.add(-1.0)     # negative clamps to zero
        assert histogram.count == 3
        assert histogram.min == 0.0
        assert histogram.max == 5.0
        # Estimates stay inside the observed range.
        assert 0.0 <= histogram.percentile(50) <= 5.0

    def test_memory_is_constant(self):
        histogram = StreamingHistogram()
        buckets_before = len(histogram._counts)
        for index in range(100_000):
            histogram.add((index % 997) * 1e-5)
        assert len(histogram._counts) == buckets_before
        assert histogram.count == 100_000

    def test_merge(self):
        a, b = StreamingHistogram(), StreamingHistogram()
        for value in (0.001, 0.002, 0.003):
            a.add(value)
        for value in (0.1, 0.2):
            b.add(value)
        a.merge(b)
        assert a.count == 5
        assert a.max == 0.2
        assert a.sum == pytest.approx(0.306)

    def test_merge_rejects_different_geometry(self):
        with pytest.raises(ValueError):
            StreamingHistogram().merge(StreamingHistogram(growth=1.1))


class TestRecorderModes:
    def fill(self, recorder):
        recorder.enabled = True
        rng = random.Random(3)
        for _ in range(500):
            recorder.record("checkout", "ok", rng.uniform(0.001, 0.1))

    def test_streaming_mode_keeps_no_raw_samples(self):
        recorder = LatencyRecorder()
        self.fill(recorder)
        assert recorder.latencies == {}
        assert recorder.count("checkout") == 500

    def test_raw_mode_matches_exact_describe(self):
        recorder = LatencyRecorder(raw_samples=True)
        self.fill(recorder)
        samples = recorder.latencies["checkout"]
        assert recorder.describe_latency("checkout") == describe(samples)

    def test_streaming_close_to_raw(self):
        streaming = LatencyRecorder()
        raw = LatencyRecorder(raw_samples=True)
        self.fill(streaming)
        self.fill(raw)
        approx = streaming.describe_latency("checkout")
        exact = raw.describe_latency("checkout")
        assert approx["count"] == exact["count"]
        assert approx["mean"] == pytest.approx(exact["mean"])
        for q in ("p50", "p95", "p99"):
            assert approx[q] == pytest.approx(exact[q], rel=RESOLUTION)

    def test_timeline_buckets_ok_completions_by_second(self):
        recorder = LatencyRecorder()
        recorder.enabled = True
        recorder.record("checkout", "ok", 0.01, at=0.5)
        recorder.record("checkout", "ok", 0.01, at=0.9)
        recorder.record("checkout", "ok", 0.01, at=2.1)
        recorder.record("checkout", "failed", 0.01, at=2.2)  # not ok
        recorder.record("checkout", "ok", 0.01)              # no time
        assert recorder.timeline == {0: 2, 2: 1}

    def test_queue_delay_and_response_channels(self):
        recorder = LatencyRecorder()
        recorder.enabled = True
        recorder.record_queue_delay("checkout", 0.05)
        recorder.record_response("checkout", 0.06)
        assert recorder.queue_delays["checkout"].count == 1
        assert recorder.responses["checkout"].count == 1
        # Disabled recorders drop everything.
        cold = LatencyRecorder()
        cold.record_queue_delay("checkout", 0.05)
        cold.record_response("checkout", 0.06)
        assert cold.queue_delays == {} and cold.responses == {}
