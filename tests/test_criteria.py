"""Unit tests for the criteria auditors over synthetic state views."""

from repro.core.criteria import (
    CRITERIA,
    _audit_atomicity,
    _audit_event_order,
    _audit_integrity,
    audit_app,
)
from repro.marketplace.constants import OrderStatus


def order(order_id, customer_id=1, status=OrderStatus.PAYMENT_PROCESSED,
          total=100, sellers=(1,)):
    return {
        "order_id": order_id, "customer_id": customer_id,
        "status": status, "total_cents": total,
        "items": [{"seller_id": seller, "product_id": seller * 10,
                   "quantity": 1, "unit_price_cents": total // len(sellers)}
                  for seller in sellers],
        "created_at": 0.0, "updated_at": 0.0,
        "packages_total": 0, "packages_delivered": 0,
    }


def shipment_for(order_dict, when=1.0):
    packages = {}
    for index, seller in enumerate(
            sorted({item["seller_id"] for item in order_dict["items"]})):
        packages[f"pkg-{index}"] = {
            "package_id": f"pkg-{index}",
            "order_id": order_dict["order_id"], "seller_id": seller,
            "items": [], "status": "shipped", "shipped_at": when,
            "delivered_at": None}
    return {"order_id": order_dict["order_id"],
            "customer_id": order_dict["customer_id"],
            "packages": packages, "created_at": when}


def base_views():
    paid = order("o1", total=100)
    return {
        "orders": {"1": {"customer_id": 1, "next_order": 2,
                         "orders": {"o1": paid}}},
        "shipments": {"part-0": {"shipments":
                                 {"o1": shipment_for(paid)},
                                 "next_package": 2}},
        "stock": {"1/10": {"product_id": 10, "seller_id": 1,
                           "qty_available": 5, "qty_reserved": 0,
                           "active": True, "version": 1}},
        "products": {"1/10": {"product_id": 10, "seller_id": 1,
                              "active": True, "version": 1,
                              "price_cents": 10, "name": "",
                              "category": ""}},
        "customers": {"1": {"customer_id": 1, "spent_cents": 100,
                            "orders_placed": 1, "payments_succeeded": 1,
                            "payments_failed": 0, "deliveries": 0}},
        "event_log": [
            {"subscriber": "s", "time": 1.0, "order_id": "o1",
             "kind": "payment_confirmed"},
            {"subscriber": "s", "time": 2.0, "order_id": "o1",
             "kind": "shipment_notification"},
        ],
    }


class TestAtomicityAuditor:
    def test_clean_views_pass(self):
        result = _audit_atomicity(base_views(), max_details=5)
        assert result.passed
        assert result.checked > 0

    def test_paid_order_without_shipment_flagged(self):
        views = base_views()
        views["shipments"]["part-0"]["shipments"].clear()
        result = _audit_atomicity(views, max_details=5)
        assert result.violations == 1
        assert "no shipment" in result.details[0]

    def test_wrong_package_count_flagged(self):
        paid = order("o1", sellers=(1, 2))
        views = base_views()
        views["orders"]["1"]["orders"]["o1"] = paid
        # Shipment only has one package although two sellers participate.
        result = _audit_atomicity(views, max_details=5)
        assert result.violations >= 1

    def test_dangling_reservation_flagged(self):
        views = base_views()
        views["stock"]["1/10"]["qty_reserved"] = 3
        result = _audit_atomicity(views, max_details=5)
        assert result.violations == 1
        assert "dangling" in result.details[0]

    def test_customer_spend_mismatch_flagged(self):
        views = base_views()
        views["customers"]["1"]["spent_cents"] = 1
        result = _audit_atomicity(views, max_details=5)
        assert result.violations == 1
        assert "spent" in result.details[0]

    def test_failed_order_needs_no_shipment(self):
        views = base_views()
        views["orders"]["1"]["orders"]["o1"]["status"] = \
            OrderStatus.PAYMENT_FAILED
        views["shipments"]["part-0"]["shipments"].clear()
        views["customers"]["1"]["spent_cents"] = 0
        result = _audit_atomicity(views, max_details=5)
        assert result.passed

    def test_details_capped(self):
        views = base_views()
        for index in range(10):
            views["stock"][f"9/{index}"] = {
                "qty_available": 1, "qty_reserved": 1, "active": True}
        result = _audit_atomicity(views, max_details=3)
        assert result.violations == 10
        assert len(result.details) == 3


class TestIntegrityAuditor:
    def test_clean_views_pass(self):
        assert _audit_integrity(base_views(), max_details=5).passed

    def test_active_stock_for_inactive_product_flagged(self):
        views = base_views()
        views["products"]["1/10"]["active"] = False
        result = _audit_integrity(views, max_details=5)
        assert result.violations == 1

    def test_active_stock_for_missing_product_flagged(self):
        views = base_views()
        views["products"].clear()
        result = _audit_integrity(views, max_details=5)
        assert result.violations == 1

    def test_inactive_stock_for_inactive_product_ok(self):
        views = base_views()
        views["products"]["1/10"]["active"] = False
        views["stock"]["1/10"]["active"] = False
        assert _audit_integrity(views, max_details=5).passed


class TestEventOrderAuditor:
    def test_payment_before_shipment_passes(self):
        result = _audit_event_order(base_views(), max_details=5)
        assert result.passed
        assert result.checked == 1

    def test_shipment_before_payment_flagged(self):
        views = base_views()
        views["event_log"].reverse()
        result = _audit_event_order(views, max_details=5)
        assert result.violations == 1

    def test_shipment_without_payment_flagged(self):
        views = base_views()
        views["event_log"] = [views["event_log"][1]]
        result = _audit_event_order(views, max_details=5)
        assert result.violations == 1

    def test_payment_without_shipment_not_checked(self):
        views = base_views()
        views["event_log"] = [views["event_log"][0]]
        result = _audit_event_order(views, max_details=5)
        assert result.checked == 0
        assert result.passed

    def test_duplicate_observations_use_first(self):
        views = base_views()
        # A replayed payment event observed again later must not flip
        # the verdict: first observations decide.
        views["event_log"].append({
            "subscriber": "s", "time": 3.0, "order_id": "o1",
            "kind": "payment_confirmed"})
        result = _audit_event_order(views, max_details=5)
        assert result.passed

    def test_subscribers_audited_independently(self):
        views = base_views()
        views["event_log"] += [
            {"subscriber": "t", "time": 1.0, "order_id": "o1",
             "kind": "shipment_notification"},
            {"subscriber": "t", "time": 2.0, "order_id": "o1",
             "kind": "payment_confirmed"},
        ]
        result = _audit_event_order(views, max_details=5)
        assert result.checked == 2
        assert result.violations == 1


class TestAuditApp:
    class FakeApp:
        name = "fake"

        def audit_views(self):
            return base_views()

    def test_audit_without_driver_covers_posthoc_criteria(self):
        report = audit_app(self.FakeApp())
        assert set(report.results) == {
            "C1-atomicity", "C3-integrity", "C5-event-ordering",
            "C6-exactly-once-ingest"}
        assert report.all_pass

    def test_audit_with_driver_adds_online_criteria(self):
        class FakeDriver:
            observations = {"adds_checked": 10, "stale_adds": 2,
                            "dashboards_checked": 5,
                            "dashboard_mismatches": 0}

        report = audit_app(self.FakeApp(), FakeDriver())
        assert set(report.results) == set(CRITERIA)
        assert not report.results["C2-causal-replication"].passed
        assert report.results["C4-snapshot-dashboard"].passed
