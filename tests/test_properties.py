"""Property-based tests (hypothesis) on core data structures/invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import VersionVector
from repro.marketplace import logic
from repro.runtime import Environment
from repro.sqlstore import MVCCEngine, SerializationError


# ---------------------------------------------------------------------------
# Version vectors form a join-semilattice.
# ---------------------------------------------------------------------------
nodes = st.sampled_from(["a", "b", "c", "d"])
vectors = st.dictionaries(nodes, st.integers(min_value=0, max_value=20),
                          max_size=4).map(VersionVector)


@given(vectors, vectors)
def test_merge_is_commutative(x, y):
    assert x.merge(y) == y.merge(x)


@given(vectors, vectors, vectors)
def test_merge_is_associative(x, y, z):
    assert x.merge(y).merge(z) == x.merge(y.merge(z))


@given(vectors)
def test_merge_is_idempotent(x):
    assert x.merge(x) == x


@given(vectors, vectors)
def test_merge_dominates_both_inputs(x, y):
    merged = x.merge(y)
    assert merged.dominates(x)
    assert merged.dominates(y)


@given(vectors, st.lists(nodes, max_size=5))
def test_increment_strictly_advances(x, increments):
    current = x
    for node in increments:
        advanced = current.increment(node)
        assert advanced.dominates(current)
        assert advanced != current
        current = advanced


@given(vectors, vectors)
def test_partial_order_antisymmetry(x, y):
    if x.dominates(y) and y.dominates(x):
        assert x == y


# ---------------------------------------------------------------------------
# Stock reservation protocol never violates its invariant.
# ---------------------------------------------------------------------------
@st.composite
def stock_operations(draw):
    initial = draw(st.integers(min_value=0, max_value=50))
    ops = draw(st.lists(st.tuples(
        st.sampled_from(["reserve", "confirm", "cancel", "restock"]),
        st.integers(min_value=1, max_value=10)), max_size=30))
    return initial, ops


@given(stock_operations())
def test_stock_invariant_holds_under_any_op_sequence(scenario):
    initial, ops = scenario
    state = logic.stock.new_item(1, 1, initial)
    for op, qty in ops:
        if op == "reserve":
            state, _ = logic.stock.reserve(state, qty)
        elif op == "confirm":
            qty = min(qty, state["qty_reserved"])
            if qty > 0:
                state = logic.stock.confirm_reservation(state, qty)
        elif op == "cancel":
            state = logic.stock.cancel_reservation(state, qty)
        else:
            state = logic.stock.restock(state, qty)
        assert logic.stock.is_consistent(state), (op, qty, state)


# ---------------------------------------------------------------------------
# Cart totals are non-negative and checkout preserves item data.
# ---------------------------------------------------------------------------
cart_items = st.builds(
    dict,
    seller_id=st.integers(min_value=1, max_value=5),
    product_id=st.integers(min_value=1, max_value=10),
    quantity=st.integers(min_value=1, max_value=9),
    unit_price_cents=st.integers(min_value=0, max_value=10_000),
    price_version=st.integers(min_value=1, max_value=5),
    voucher_cents=st.integers(min_value=0, max_value=2_000),
)


@given(st.lists(cart_items, min_size=1, max_size=10))
def test_cart_total_is_never_negative(items):
    state = logic.cart.new_cart(1)
    for entry in items:
        state = logic.cart.add_item(state, entry)
    assert logic.cart.total_cents(state) >= 0


@given(st.lists(cart_items, min_size=1, max_size=10))
def test_checkout_total_matches_order_total(items):
    state = logic.cart.new_cart(1)
    for entry in items:
        state = logic.cart.add_item(state, entry)
    expected = logic.cart.total_cents(state)
    state, sealed = logic.cart.seal_for_checkout(state)
    orders = logic.order.new_customer_orders(1)
    orders, order = logic.order.assemble(orders, "o1", sealed, now=0.0)
    assert order["total_cents"] == expected


# ---------------------------------------------------------------------------
# MVCC snapshot stability under arbitrary interleaved writers.
# ---------------------------------------------------------------------------
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=9),
                          st.integers(min_value=0, max_value=1_000)),
                min_size=1, max_size=40))
@settings(max_examples=50)
def test_snapshot_sum_is_stable_under_later_writes(writes):
    engine = MVCCEngine()
    engine.create_table("t", ["id", "value"], primary_key="id")
    for key in range(10):
        engine.autocommit("t", {"id": key, "value": 0})
    snapshot = engine.snapshot()
    baseline = snapshot.aggregate("t", "value")
    for key, value in writes:
        engine.autocommit("t", {"id": key, "value": value})
    assert snapshot.aggregate("t", "value") == baseline


@given(st.data())
@settings(max_examples=50)
def test_first_committer_wins_never_loses_updates(data):
    """Counter incremented via SI transactions with retry: no lost updates."""
    engine = MVCCEngine()
    engine.create_table("t", ["id", "value"], primary_key="id")
    engine.autocommit("t", {"id": 1, "value": 0})
    rounds = data.draw(st.integers(min_value=1, max_value=15))
    for _ in range(rounds):
        # Two concurrent increments; the loser retries.
        t1 = engine.begin()
        t2 = engine.begin()
        for txn in (t1, t2):
            row = txn.read("t", 1)
            txn.update("t", 1, {"value": row["value"] + 1})
        t1.commit()
        try:
            t2.commit()
        except SerializationError:
            retry = engine.begin()
            row = retry.read("t", 1)
            retry.update("t", 1, {"value": row["value"] + 1})
            retry.commit()
    final = engine.snapshot().read("t", 1)
    assert final["value"] == 2 * rounds


# ---------------------------------------------------------------------------
# The DES kernel orders timeouts correctly for any delay multiset.
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=30))
def test_kernel_fires_timeouts_in_nondecreasing_order(delays):
    env = Environment()
    fired = []

    def waiter(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(waiter(env, delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# ---------------------------------------------------------------------------
# Consistent-hash placement is stable and balanced-ish.
# ---------------------------------------------------------------------------
@given(st.sets(st.text(min_size=1, max_size=12), min_size=10, max_size=80))
@settings(max_examples=30)
def test_placement_deterministic_across_instances(keys):
    from repro.actors.placement import ConsistentHashPlacement

    class FakeSilo:
        def __init__(self, name):
            self.name = name

    def build():
        placement = ConsistentHashPlacement()
        for index in range(4):
            placement.add_silo(FakeSilo(f"s{index}"))
        return placement

    p1, p2 = build(), build()
    for key in keys:
        assert p1.place("T", key).name == p2.place("T", key).name
