"""Unit tests for the Statefun-style dataflow runtime."""

import pytest

from repro.dataflow import (
    StatefulFunction,
    StatefunConfig,
    StatefunRuntime,
)
from repro.runtime import Environment


class CounterFn(StatefulFunction):
    """Counts messages per key; egresses the running total."""

    def invoke(self, context, payload):
        context.state["count"] = context.state.get("count", 0) + 1
        if payload == "report":
            context.egress("count", context.state["count"])
        return None


class ChainFn(StatefulFunction):
    """Forwards to CounterFn, demonstrating function-to-function sends."""

    def invoke(self, context, payload):
        context.state.setdefault("forwarded", 0)
        context.state["forwarded"] += 1
        context.send("counter", payload["key"], payload.get("msg", "x"))
        return None


class AckFn(StatefulFunction):
    """Acknowledges every request via egress (request/response bridge)."""

    def invoke(self, context, payload):
        context.state["last"] = payload
        context.egress("ack", {"echo": payload})
        return None


def make_runtime(seed=1, **config_kwargs):
    env = Environment(seed=seed)
    config_kwargs.setdefault("checkpoint_interval", 0.0)
    runtime = StatefunRuntime(env, StatefunConfig(**config_kwargs))
    runtime.register("counter", CounterFn())
    runtime.register("chain", ChainFn())
    runtime.register("ack", AckFn())
    return env, runtime


def test_message_updates_per_key_state():
    env, runtime = make_runtime()
    runtime.send_ingress("counter", "k1", "hit")
    runtime.send_ingress("counter", "k1", "hit")
    runtime.send_ingress("counter", "k2", "hit")
    env.run()
    assert runtime.state_of("counter", "k1")["count"] == 2
    assert runtime.state_of("counter", "k2")["count"] == 1


def test_unregistered_function_fails():
    env, runtime = make_runtime()
    runtime.send_ingress("ghost", "k", "x")
    from repro.runtime import SimulationError
    with pytest.raises(SimulationError):
        env.run()


def test_function_to_function_send():
    env, runtime = make_runtime()
    runtime.send_ingress("chain", "c1", {"key": "k9"})
    env.run()
    assert runtime.state_of("chain", "c1")["forwarded"] == 1
    assert runtime.state_of("counter", "k9")["count"] == 1


def test_request_response_roundtrip():
    env, runtime = make_runtime()
    promise = runtime.request("ack", "a", {"n": 1}, request_id="r1")
    result = env.run(until=promise)
    assert result == {"echo": {"n": 1}}


def test_same_key_processed_sequentially():
    order = []

    class SlowFn(StatefulFunction):
        cpu_cost = 0.0

        def invoke(self, context, payload):
            start = context.worker.env.now
            yield context.worker.env.timeout(0.01)
            order.append((payload, start))

    env = Environment()
    runtime = StatefunRuntime(env, StatefunConfig(checkpoint_interval=0.0,
                                                  partitions=1))
    runtime.register("slow", SlowFn())
    for i in range(3):
        runtime.send_ingress("slow", "k", i)
    env.run()
    starts = [start for _, start in order]
    assert starts == sorted(starts)
    assert starts[1] - starts[0] >= 0.01


def test_partition_routing_is_deterministic():
    env1, runtime1 = make_runtime(seed=1, partitions=4)
    env2, runtime2 = make_runtime(seed=99, partitions=4)
    for key in ("a", "b", "c", "d", "e"):
        w1 = runtime1.worker_for(("counter", key)).index
        w2 = runtime2.worker_for(("counter", key)).index
        assert w1 == w2


def test_keys_spread_across_partitions():
    env, runtime = make_runtime(partitions=4)
    indexes = {runtime.worker_for(("counter", f"k{i}")).index
               for i in range(100)}
    assert len(indexes) == 4


def test_checkpoint_pauses_processing():
    env, runtime = make_runtime(checkpoint_interval=0.1,
                                checkpoint_sync=0.05)
    for i in range(5):
        runtime.send_ingress("counter", f"k{i}", "hit")
    env.run(until=0.5)
    assert runtime.checkpoints_taken >= 2


def test_failure_without_checkpoint_replays_everything():
    env, runtime = make_runtime()
    runtime.send_ingress("counter", "k", "hit")
    runtime.send_ingress("counter", "k", "hit")
    env.run(until=0.05)
    assert runtime.state_of("counter", "k")["count"] == 2

    def crash():
        yield from runtime.inject_failure()

    env.process(crash())
    env.run()
    # State was rebuilt by replaying the ingress log: same count, not 4.
    assert runtime.state_of("counter", "k")["count"] == 2


def test_failure_after_checkpoint_replays_only_tail():
    env, runtime = make_runtime(checkpoint_interval=0.0)
    runtime.send_ingress("counter", "k", "hit")
    env.run(until=0.05)

    def checkpoint_then_more():
        yield from runtime.take_checkpoint()
        runtime.send_ingress("counter", "k", "hit")
        yield env.timeout(0.05)
        yield from runtime.inject_failure()

    env.process(checkpoint_then_more())
    env.run()
    assert runtime.state_of("counter", "k")["count"] == 2
    assert runtime.recoveries == 1


def test_exactly_once_egress_across_replay():
    env, runtime = make_runtime()
    promise = runtime.request("ack", "a", {"n": 1}, request_id="r1")
    env.run(until=0.05)
    assert promise.triggered

    def crash():
        yield from runtime.inject_failure()

    env.process(crash())
    env.run()
    # The ack function ran twice (replay) but egressed only once.
    acks = [entry for entry in runtime.egress_log if entry[1] == "ack"]
    assert len(acks) == 1


def test_recovery_counts_and_pause_cost():
    env, runtime = make_runtime(recovery_pause=0.3)
    runtime.send_ingress("counter", "k", "hit")
    env.run(until=0.05)
    before = env.now

    def crash():
        yield from runtime.inject_failure()

    process = env.process(crash())
    env.run(until=process)
    assert env.now - before >= 0.3
    assert runtime.recoveries == 1


def test_envelope_cpu_charged_per_message():
    env = Environment()
    config = StatefunConfig(checkpoint_interval=0.0, partitions=1,
                            cores_per_partition=1, envelope_cpu=0.01,
                            delivery_latency=0.0)
    runtime = StatefunRuntime(env, config)
    runtime.register("counter", CounterFn())
    for i in range(5):
        runtime.send_ingress("counter", f"k{i}", "hit")
    env.run()
    # 5 messages on one core at >= 0.01s each.
    assert env.now >= 0.05


def test_total_queued_reflects_backlog():
    env, runtime = make_runtime(partitions=1, cores_per_partition=1)
    for i in range(10):
        runtime.send_ingress("counter", f"k{i}", "hit")
    assert runtime.total_queued == 0  # not yet delivered
    env.run(until=runtime.config.delivery_latency * 1.5)
    assert runtime.total_queued > 0
    env.run()
    assert runtime.total_queued == 0


def test_state_of_unknown_address_is_none():
    env, runtime = make_runtime()
    assert runtime.state_of("counter", "never") is None


class SuspendingMutatorFn(StatefulFunction):
    """Mutates state, suspends for simulated time, mutates again.

    Regression shape for incremental checkpoints: a checkpoint taken
    while the invocation is suspended must not permanently treat the
    address as clean — the resumed body mutates the same state dict.
    """

    def invoke(self, context, payload):
        def body():
            context.state["phase"] = 1
            yield context.runtime.env.timeout(payload["hold"])
            context.state["phase"] = 2
        return body()


def test_checkpoint_spanning_suspended_function_keeps_address_dirty():
    env, runtime = make_runtime()
    runtime.register("mutator", SuspendingMutatorFn())
    runtime.send_ingress("mutator", "m1", {"hold": 0.5})

    def scenario():
        # First checkpoint lands while the invocation is suspended
        # (phase == 1 captured, dirty set cleared).
        yield env.timeout(0.1)
        yield from runtime.take_checkpoint()
        assert runtime.state_of("mutator", "m1")["phase"] == 1
        # The function resumes at t=0.5 and writes phase == 2; the
        # second checkpoint must re-snapshot the address.
        yield env.timeout(0.8)
        yield from runtime.take_checkpoint()
        # Recovery restores the latest checkpoint; replay starts past
        # the ingress message, so the checkpoint alone must carry the
        # post-resume mutation.
        yield from runtime.inject_failure()

    env.process(scenario())
    env.run()
    assert runtime.state_of("mutator", "m1")["phase"] == 2
