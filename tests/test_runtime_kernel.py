"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.runtime import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    Resource,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)
        return env.now

    process = env.process(proc(env))
    env.run()
    assert process.value == 5.0
    assert env.now == 5.0


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def ticker(env):
        while True:
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run(until=3.5)
    assert env.now == 3.5


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return "done"

    process = env.process(proc(env))
    result = env.run(until=process)
    assert result == "done"


def test_processes_interleave_deterministically():
    env = Environment()
    log = []

    def worker(env, name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(worker(env, "a", 2.0))
    env.process(worker(env, "b", 1.0))
    env.process(worker(env, "c", 2.0))
    env.run()
    assert log == [(1.0, "b"), (2.0, "a"), (2.0, "c")]


def test_event_succeed_resumes_waiter():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter(env):
        value = yield gate
        seen.append(value)

    def opener(env):
        yield env.timeout(1.0)
        gate.succeed(42)

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert seen == [42]


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()

    def waiter(env):
        try:
            yield gate
        except ValueError as exc:
            return str(exc)

    def failer(env):
        yield env.timeout(1.0)
        gate.fail(ValueError("boom"))

    process = env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert process.value == "boom"


def test_unhandled_event_failure_surfaces():
    env = Environment()
    gate = env.event()
    gate.fail(RuntimeError("nobody listening"))
    with pytest.raises(SimulationError):
        env.run()


def test_defused_failure_does_not_surface():
    env = Environment()
    gate = env.event()
    gate.fail(RuntimeError("handled elsewhere"))
    gate.defuse()
    env.run()  # must not raise


def test_event_cannot_trigger_twice():
    env = Environment()
    gate = env.event()
    gate.succeed(1)
    with pytest.raises(RuntimeError):
        gate.succeed(2)
    with pytest.raises(RuntimeError):
        gate.fail(ValueError())


def test_process_waits_on_another_process():
    env = Environment()

    def child(env):
        yield env.timeout(3.0)
        return "child-result"

    def parent(env):
        result = yield env.process(child(env))
        return result

    process = env.process(parent(env))
    env.run()
    assert process.value == "child-result"


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        raise KeyError("missing")

    def parent(env):
        try:
            yield env.process(child(env))
        except KeyError:
            return "caught"

    process = env.process(parent(env))
    env.run()
    assert process.value == "caught"


def test_yield_non_event_kills_process():
    env = Environment()

    def bad(env):
        yield 42  # type: ignore[misc]

    process = env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()
    assert not process.ok


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(3.0, value="b")
        results = yield AllOf(env, [t1, t2])
        return (env.now, [results[t1], results[t2]])

    process = env.process(proc(env))
    env.run()
    assert process.value == (3.0, ["a", "b"])


def test_any_of_fires_on_first_event():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        results = yield AnyOf(env, [t1, t2])
        return (env.now, t1 in results, t2 in results)

    process = env.process(proc(env))
    env.run()
    assert process.value == (1.0, True, False)


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc(env):
        yield AllOf(env, [])
        return env.now

    process = env.process(proc(env))
    env.run()
    assert process.value == 0.0


def test_interrupt_raises_inside_process():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, env.now)

    def interrupter(env, victim):
        yield env.timeout(2.0)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert victim.value == ("interrupted", "wake up", 2.0)


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(0.1)

    process = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        process.interrupt()


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_rng_streams_are_deterministic_and_independent():
    env1 = Environment(seed=7)
    env2 = Environment(seed=7)
    env3 = Environment(seed=8)
    a1 = [env1.rng("a").random() for _ in range(5)]
    a2 = [env2.rng("a").random() for _ in range(5)]
    a3 = [env3.rng("a").random() for _ in range(5)]
    b1 = [env1.rng("b").random() for _ in range(5)]
    assert a1 == a2
    assert a1 != a3
    assert a1 != b1


def test_rng_stream_is_cached():
    env = Environment(seed=1)
    assert env.rng("x") is env.rng("x")


class TestResource:
    def test_grants_up_to_capacity_immediately(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        r1 = resource.request()
        r2 = resource.request()
        r3 = resource.request()
        assert r1.granted and r2.granted
        assert not r3.granted
        assert resource.queue_length == 1

    def test_release_wakes_fifo_waiter(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        order = []

        def user(env, name, hold):
            yield from resource.use(hold)
            order.append((name, env.now))

        env.process(user(env, "a", 2.0))
        env.process(user(env, "b", 1.0))
        env.process(user(env, "c", 1.0))
        env.run()
        assert order == [("a", 2.0), ("b", 3.0), ("c", 4.0)]

    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_release_ungranted_rejected(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        resource.request()
        blocked = resource.request()
        with pytest.raises(RuntimeError):
            resource.release(blocked)

    def test_cancel_removes_waiting_request(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        held = resource.request()
        blocked = resource.request()
        blocked.cancel()
        resource.release(held)
        assert resource.in_use == 0

    def test_utilisation_accounting(self):
        env = Environment()
        resource = Resource(env, capacity=2)

        def user(env):
            yield from resource.use(4.0)

        env.process(user(env))
        env.run(until=8.0)
        # one of two slots busy for half the horizon -> 25%
        assert resource.utilisation() == pytest.approx(0.25)
