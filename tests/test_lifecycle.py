"""Lifecycle state-machine properties, replayed against real runs.

Two layers: pure hypothesis walks over the transition table (every
legal hop advances, every illegal hop raises, finals are absorbing),
and a replay property that runs the full unhappy-path workload — flaky
payments, returns, external ingestion, message loss — on each platform
and re-validates every order's recorded ``history`` trail hop by hop.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import ALL_APPS, AppConfig
from repro.core import (
    BenchmarkDriver,
    DriverConfig,
    WorkloadConfig,
    audit_app,
    generate_dataset,
)
from repro.core.workload.config import TransactionMix
from repro.marketplace.constants import (
    FINAL_STATUSES,
    TRANSITIONS,
    OrderStatus,
)
from repro.marketplace.logic import lifecycle
from repro.runtime import Environment

APP_NAMES = list(ALL_APPS)

ALL_STATUSES = sorted(
    set(TRANSITIONS) | {to for tos in TRANSITIONS.values() for to in tos})


class TestTransitionTable:
    def test_final_statuses_are_absorbing(self):
        for status in FINAL_STATUSES:
            assert not TRANSITIONS.get(status, ()), status

    def test_in_progress_disjoint_from_finals(self):
        assert not set(OrderStatus.IN_PROGRESS) & set(FINAL_STATUSES)

    def test_every_status_reachable_from_created(self):
        seen = {OrderStatus.CREATED}
        frontier = [OrderStatus.CREATED]
        while frontier:
            for to in TRANSITIONS.get(frontier.pop(), ()):
                if to not in seen:
                    seen.add(to)
                    frontier.append(to)
        assert seen == set(ALL_STATUSES)


@st.composite
def legal_walks(draw):
    """A status trail following only legal hops from INVOICED."""
    trail = [OrderStatus.INVOICED]
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        hops = TRANSITIONS.get(trail[-1], ())
        if not hops:
            break
        trail.append(draw(st.sampled_from(sorted(hops))))
    return trail


class TestAdvanceProperties:
    @given(legal_walks())
    def test_legal_walk_replays_and_records_history(self, trail):
        order = {"order_id": "o1", "status": trail[0]}
        for hop, status in enumerate(trail[1:], start=1):
            order = lifecycle.advance(order, status, now=float(hop))
        assert order["status"] == trail[-1]
        assert order.get("history", [trail[0]]) == trail

    @given(st.sampled_from(ALL_STATUSES), st.sampled_from(ALL_STATUSES))
    def test_illegal_hops_always_raise(self, current, to):
        order = {"order_id": "o1", "status": current}
        if to in TRANSITIONS.get(current, ()):
            assert lifecycle.advance(order, to, 1.0)["status"] == to
        else:
            with pytest.raises(lifecycle.IllegalTransition):
                lifecycle.advance(order, to, 1.0)

    @given(st.sampled_from(sorted(FINAL_STATUSES)),
           st.sampled_from(ALL_STATUSES))
    def test_finals_never_exited(self, final, to):
        with pytest.raises(lifecycle.IllegalTransition):
            lifecycle.advance({"order_id": "o1", "status": final}, to, 1.0)


def unhappy_path_run(app_name, seed):
    """A short run exercising every saga on ``app_name``."""
    env = Environment(seed=seed)
    app = ALL_APPS[app_name](env, AppConfig(
        silos=2, cores_per_silo=2, approval_rate=0.8,
        drop_probability=0.02))
    workload = WorkloadConfig(
        sellers=3, customers=12, products_per_seller=4,
        duplicate_submit_probability=0.3,
        mix=TransactionMix(checkout=40, price_update=5, product_delete=1,
                           update_delivery=20, dashboard=5,
                           submit_external=15, request_return=14))
    driver = BenchmarkDriver(env, app, workload,
                             DriverConfig(workers=4, warmup=0.2,
                                          duration=1.5, drain=0.5))
    driver.run()
    return app, driver


def iter_orders(app):
    for shard in app.audit_views()["orders"].values():
        yield from shard["orders"].values()


@pytest.mark.parametrize("name", APP_NAMES)
class TestHistoryReplay:
    @given(seed=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=3, deadline=None)
    def test_every_recorded_history_is_a_legal_walk(self, name, seed):
        app, driver = unhappy_path_run(name, seed)
        orders = list(iter_orders(app))
        assert orders, "run produced no orders to replay"
        for order in orders:
            trail = order.get("history") or [order["status"]]
            assert trail[-1] == order["status"]
            for current, to in zip(trail, trail[1:]):
                assert lifecycle.can_advance(current, to), (
                    f"order {order['order_id']}: illegal recorded hop "
                    f"{current!r} -> {to!r} (trail: {trail})")
            for status in trail[:-1]:
                assert status not in FINAL_STATUSES, (
                    f"order {order['order_id']}: left final {status!r} "
                    f"(trail: {trail})")


ITEMS = [{"seller_id": 1, "product_id": 1, "quantity": 3,
          "unit_price_cents": 500}]


def make_app(name, seed=17):
    env = Environment(seed=seed)
    app = ALL_APPS[name](env, AppConfig(silos=2, cores_per_silo=2))
    workload = WorkloadConfig(sellers=3, customers=12,
                              products_per_seller=4, initial_stock=1000)
    app.ingest(generate_dataset(workload, seed=seed))
    return env, app


def submit(env, app, ext_order_no="E000042"):
    return env.process(app.submit_external("p1", 2, ext_order_no, 1,
                                           [dict(item) for item in ITEMS]))


@pytest.mark.parametrize("name", APP_NAMES)
class TestDuplicateSubmitExactlyOnce:
    def test_racing_and_late_duplicates_create_one_order(self, name):
        env, app = make_app(name)
        first = submit(env, app)
        second = submit(env, app)  # races the first
        env.run(until=env.now + 2.0)
        third = submit(env, app)  # resubmitted long after
        env.run(until=env.now + 2.0)
        results = [p.value for p in (first, second, third)]
        assert all(r.ok for r in results), results
        order_ids = {r.payload["order_id"] for r in results}
        assert len(order_ids) == 1, order_ids
        assert sum(1 for r in results
                   if not r.payload.get("idempotent")) == 1

        views = app.audit_views()
        # Exactly one order carries the external key...
        ext_orders = [order for order in iter_orders(app)
                      if order.get("ext") == "p1/2/E000042"]
        assert len(ext_orders) == 1
        # ...registered exactly once...
        entries = [oid for shard in views["ingestion"].values()
                   for key, oid in shard["entries"].items()
                   if key == "p1/2/E000042"]
        assert len(entries) == 1
        # ...and stock was decremented exactly once.
        assert views["stock"]["1/1"]["qty_available"] == 1000 - 3
        assert views["stock"]["1/1"]["qty_reserved"] == 0

    def test_audit_confirms_exactly_once(self, name):
        env, app = make_app(name)
        submit(env, app)
        submit(env, app)
        env.run(until=env.now + 2.0)
        result = audit_app(app).results["C6-exactly-once-ingest"]
        assert result.passed
        assert result.checked >= 1

    def test_distinct_orders_not_deduplicated(self, name):
        env, app = make_app(name)
        submit(env, app, "E000001")
        submit(env, app, "E000002")
        env.run(until=env.now + 2.0)
        ext_keys = {order.get("ext") for order in iter_orders(app)
                    if order.get("ext")}
        assert ext_keys == {"p1/2/E000001", "p1/2/E000002"}
        views = app.audit_views()
        assert views["stock"]["1/1"]["qty_available"] == 1000 - 6
