"""A minimal in-memory marketplace app for driver-level tests.

Instant (fixed-latency) operations with full bookkeeping: call counts,
price versions and deletions, so driver tests can assert on submission
behaviour without the cost or nondeterminism of a real platform model.
Shared by the closed-loop, open-loop and scenario test modules.
"""

from repro.apps.base import MarketplaceApp, ok, rejected


class StubApp(MarketplaceApp):
    """Minimal in-memory app: instant operations, full bookkeeping."""

    name = "stub"

    def __init__(self, env, config=None, op_latency=0.001):
        super().__init__(env, config)
        self.op_latency = op_latency
        self.calls = {"add_item": 0, "checkout": 0, "update_price": 0,
                      "delete_product": 0, "update_delivery": 0,
                      "dashboard": 0, "submit_external": 0,
                      "request_return": 0}
        self.versions = {}
        self.deleted = set()
        self.product_adds = {}
        self.external = {}

    def ingest(self, dataset):
        self.dataset = dataset
        if getattr(dataset, "lazy", False):
            return  # versions default on touch via .get(key, 1)
        for product in dataset.all_products():
            self.versions[product.key] = 1

    # Lazy-dataset touch hooks: nothing to install, versions default
    # on first use via ``.get(key, 1)``.
    def _ingest_seller(self, seller):
        pass

    def _ingest_customer(self, customer):
        pass

    def _ingest_product(self, product):
        pass

    def _ingest_stock(self, stock_item):
        pass

    def _op(self, name):
        self.calls[name] += 1
        yield self.env.timeout(self.op_latency)

    def add_item(self, customer_id, seller_id, product_id, quantity,
                 voucher_cents=0):
        yield from self._op("add_item")
        key = f"{seller_id}/{product_id}"
        self.product_adds[key] = self.product_adds.get(key, 0) + 1
        if key in self.deleted:
            return rejected("add_item", reason="unavailable")
        return ok("add_item", price_version=self.versions.get(key, 1))

    def checkout(self, customer_id, order_id, payment_method):
        yield from self._op("checkout")
        return ok("checkout", order_id=order_id, total_cents=100,
                  invoice="x")

    def update_price(self, seller_id, product_id, price_cents):
        yield from self._op("update_price")
        key = f"{seller_id}/{product_id}"
        self.versions[key] = self.versions.get(key, 1) + 1
        return ok("update_price", version=self.versions[key])

    def delete_product(self, seller_id, product_id):
        yield from self._op("delete_product")
        key = f"{seller_id}/{product_id}"
        self.deleted.add(key)
        self.versions[key] = self.versions.get(key, 1) + 1
        return ok("delete_product", version=self.versions[key])

    def update_delivery(self):
        yield from self._op("update_delivery")
        return ok("update_delivery", sellers=0, packages_delivered=0)

    def dashboard(self, seller_id):
        yield from self._op("dashboard")
        return ok("dashboard", amount_cents=0, entries=[],
                  entries_total_cents=0)

    def submit_external(self, platform, shop_id, ext_order_no,
                        customer_id, items):
        yield from self._op("submit_external")
        key = f"{platform}/{shop_id}/{ext_order_no}"
        known = key in self.external
        if not known:
            self.external[key] = f"x{key}"
        return ok("submit_external", order_id=self.external[key],
                  idempotent=known, invoice="x", total_cents=100)

    def request_return(self, customer_id, order_id):
        yield from self._op("request_return")
        return ok("request_return", order_id=order_id,
                  outcome="returned", refund_cents=100)

    def audit_views(self):
        return {}
