"""Unit tests for the replicated key-value store."""

import pytest

from repro.kvstore import (
    CausalSession,
    KVStore,
    ReplicatedKV,
    VersionVector,
)
from repro.runtime import Environment


def run_proc(env, generator):
    process = env.process(generator)
    env.run()
    if not process.ok:
        raise process.value
    return process.value


class TestVersionVector:
    def test_empty_vectors_equal(self):
        assert VersionVector() == VersionVector({})

    def test_increment_creates_new_vector(self):
        v0 = VersionVector()
        v1 = v0.increment("a")
        assert v0.get("a") == 0
        assert v1.get("a") == 1

    def test_dominates_pointwise(self):
        a = VersionVector({"x": 2, "y": 1})
        b = VersionVector({"x": 1, "y": 1})
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_concurrent_vectors(self):
        a = VersionVector({"x": 2})
        b = VersionVector({"y": 1})
        assert a.concurrent_with(b)
        assert b.concurrent_with(a)

    def test_merge_is_pointwise_max(self):
        a = VersionVector({"x": 2, "y": 1})
        b = VersionVector({"x": 1, "z": 3})
        merged = a.merge(b)
        assert merged.as_dict() == {"x": 2, "y": 1, "z": 3}

    def test_missing_entries_treated_as_zero_for_equality(self):
        assert VersionVector({"x": 0}) == VersionVector()

    def test_hash_ignores_zero_entries(self):
        assert hash(VersionVector({"x": 0})) == hash(VersionVector())

    def test_le_operator(self):
        a = VersionVector({"x": 1})
        b = VersionVector({"x": 2})
        assert a <= b
        assert not b <= a


class TestKVStore:
    def test_put_get_roundtrip(self):
        env = Environment()
        store = KVStore(env, "s")

        def scenario():
            yield from store.put("k", "v")
            entry = yield from store.get("k")
            return entry.value

        assert run_proc(env, scenario()) == "v"

    def test_get_missing_returns_none(self):
        env = Environment()
        store = KVStore(env, "s")

        def scenario():
            entry = yield from store.get("nope")
            return entry

        assert run_proc(env, scenario()) is None

    def test_operations_charge_latency(self):
        env = Environment()
        store = KVStore(env, "s", read_latency=0.25, write_latency=0.5)

        def scenario():
            yield from store.put("k", 1)
            yield from store.get("k")
            return env.now

        assert run_proc(env, scenario()) == pytest.approx(0.75)

    def test_delete_returns_existence(self):
        env = Environment()
        store = KVStore(env, "s")

        def scenario():
            yield from store.put("k", 1)
            first = yield from store.delete("k")
            second = yield from store.delete("k")
            return first, second

        assert run_proc(env, scenario()) == (True, False)

    def test_peek_does_not_count_as_read(self):
        env = Environment()
        store = KVStore(env, "s")
        store.put_now("k", 9)
        assert store.peek("k").value == 9
        assert store.reads == 0

    def test_len_and_contains(self):
        env = Environment()
        store = KVStore(env, "s")
        store.put_now("a", 1)
        store.put_now("b", 2)
        assert len(store) == 2
        assert "a" in store
        assert "z" not in store


class TestReplicatedKV:
    def test_primary_read_sees_write_immediately(self):
        env = Environment()
        kv = ReplicatedKV(env, "kv", replicas=1, replication_lag=1.0)

        def scenario():
            yield from kv.put("k", "fresh")
            entry = yield from kv.get_primary("k")
            return entry.value

        assert run_proc(env, scenario()) == "fresh"

    def test_eventual_read_can_be_stale(self):
        env = Environment()
        kv = ReplicatedKV(env, "kv", replicas=1, replication_lag=10.0)

        def scenario():
            yield from kv.put("k", "v1")
            entry = yield from kv.get_eventual("k")
            return entry

        assert run_proc(env, scenario()) is None
        assert kv.stale_reads == 1

    def test_eventual_read_fresh_after_lag(self):
        env = Environment()
        kv = ReplicatedKV(env, "kv", replicas=1, replication_lag=0.5)

        def scenario():
            yield from kv.put("k", "v1")
            yield env.timeout(1.0)
            entry = yield from kv.get_eventual("k")
            return entry.value

        assert run_proc(env, scenario()) == "v1"
        assert kv.stale_reads == 0

    def test_causal_read_blocks_until_replica_catches_up(self):
        env = Environment()
        kv = ReplicatedKV(env, "kv", replicas=1, replication_lag=2.0)
        session = CausalSession("client")

        def scenario():
            yield from kv.put("k", "v1", session=session)
            entry = yield from kv.get_causal("k", session)
            return env.now, entry.value

        when, value = run_proc(env, scenario())
        assert value == "v1"
        assert when >= 2.0  # had to wait for replication
        assert kv.causal_waits == 1

    def test_causal_read_without_prior_write_does_not_block(self):
        env = Environment()
        kv = ReplicatedKV(env, "kv", replicas=2, replication_lag=5.0)
        session = CausalSession("client")

        def scenario():
            entry = yield from kv.get_causal("missing", session)
            return env.now, entry

        when, entry = run_proc(env, scenario())
        assert entry is None
        assert when < 5.0

    def test_session_frontier_advances_on_write_and_read(self):
        env = Environment()
        kv = ReplicatedKV(env, "kv", replicas=1, replication_lag=0.01)
        session = CausalSession("client")

        def scenario():
            yield from kv.put("a", 1, session=session)
            yield from kv.put("b", 2, session=session)
            yield env.timeout(1.0)
            yield from kv.get_causal("a", session)
            return session.frontier.get(kv.primary.name)

        assert run_proc(env, scenario()) == 2

    def test_delete_replicates(self):
        env = Environment()
        kv = ReplicatedKV(env, "kv", replicas=1, replication_lag=0.1)

        def scenario():
            yield from kv.put("k", 1)
            yield env.timeout(1.0)
            yield from kv.delete("k")
            yield env.timeout(1.0)
            entry = yield from kv.get_eventual("k")
            return entry

        assert run_proc(env, scenario()) is None

    def test_monotonic_reads_within_session(self):
        """A session never observes an older version after a newer one."""
        env = Environment()
        kv = ReplicatedKV(env, "kv", replicas=3, replication_lag=0.5)
        session = CausalSession("client")
        observed = []

        def writer():
            for i in range(10):
                yield from kv.put("k", i)
                yield env.timeout(0.2)

        def reader():
            yield env.timeout(0.6)
            for _ in range(20):
                entry = yield from kv.get_causal("k", session)
                if entry is not None:
                    observed.append(entry.value)
                yield env.timeout(0.1)

        env.process(writer())
        env.process(reader())
        env.run()
        assert observed == sorted(observed)

    def test_no_replicas_rejects_replica_reads(self):
        env = Environment()
        kv = ReplicatedKV(env, "kv", replicas=0)

        def scenario():
            yield from kv.get_eventual("k")

        from repro.runtime import SimulationError
        process = env.process(scenario())
        with pytest.raises(SimulationError):
            env.run()
        assert not process.ok
        assert isinstance(process.value, RuntimeError)

    def test_negative_replica_count_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            ReplicatedKV(env, "kv", replicas=-1)
