"""Smoke tests for the named scenario suite (driven against the stub
app for speed; the bench suite exercises them on the real platforms)."""

import pytest

from _stub_app import StubApp
from repro.core.scenarios import SCENARIOS, get_scenario, scenario_names
from repro.runtime import Environment

EXPECTED = {"baseline", "flash-sale", "heavy-writer",
            "burst-then-quiesce", "delete-churn", "overload-ramp",
            "silo-crash", "scale-out-under-load", "rolling-restart",
            "return-storm", "payment-flaky", "duplicate-ingest",
            "million-keys", "diurnal", "autoscale-flash-sale"}

FAULT_SCENARIOS = {"silo-crash", "scale-out-under-load",
                   "rolling-restart"}

AUTOSCALED_SCENARIOS = {"diurnal", "autoscale-flash-sale"}


class TestRegistry:
    def test_catalogue_contents(self):
        assert set(scenario_names()) == EXPECTED
        assert set(SCENARIOS) == EXPECTED

    def test_get_scenario_unknown(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")

    def test_descriptions_present(self):
        for name in scenario_names():
            assert len(get_scenario(name).description) > 20

    def test_build_config_rejects_bad_scales(self):
        scenario = get_scenario("baseline")
        with pytest.raises(ValueError):
            scenario.build_config(rate_scale=0.0)
        with pytest.raises(ValueError):
            scenario.build_config(duration_scale=-1.0)

    def test_workload_factory_returns_fresh_configs(self):
        scenario = get_scenario("baseline")
        assert scenario.workload() is not scenario.workload()


def run_scenario(name, seed=3, rate_scale=0.5, duration_scale=0.5):
    scenario = get_scenario(name)
    env = Environment(seed=seed)
    app = StubApp(env)
    driver = scenario.build_driver(env, app, rate_scale=rate_scale,
                                   duration_scale=duration_scale,
                                   data_seed=seed)
    return driver.run(), driver, app


class TestScenarioSmoke:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_runs_end_to_end(self, name):
        metrics, driver, app = run_scenario(name)
        stats = metrics.open_loop
        assert stats["arrivals"] > 0
        assert stats["dispatched"] + stats["shed"] == stats["arrivals"]
        assert stats["completed"] > 0
        assert metrics.total_throughput > 0
        # Every dispatched business transaction records queueing delay
        # separately from service latency.
        assert metrics.ops["checkout"].queue_delay is not None
        assert metrics.timeline

    def test_flash_sale_hotspot_fires(self):
        metrics, driver, app = run_scenario("flash-sale")
        assert driver.sampler.hot_draws > 0
        assert not driver.sampler.active  # cleared after the window

    def test_heavy_writer_mix_dominates(self):
        metrics, driver, app = run_scenario("heavy-writer")
        writes = app.calls["update_price"] + app.calls["delete_product"]
        assert writes > app.calls["checkout"]

    def test_delete_churn_exercises_compensation(self):
        metrics, driver, app = run_scenario("delete-churn",
                                            duration_scale=1.0)
        assert driver.registry.deletes > 0
        for seller_id, product_id in driver.registry.live_products():
            assert f"{seller_id}/{product_id}" not in app.deleted

    def test_overload_ramp_builds_queue(self):
        metrics, driver, app = run_scenario("overload-ramp",
                                            rate_scale=1.0,
                                            duration_scale=1.0)
        baseline, _, _ = run_scenario("baseline", rate_scale=1.0,
                                      duration_scale=1.0)
        assert metrics.open_loop["max_queue"] > \
            baseline.open_loop["max_queue"]

    def test_burst_then_quiesce_drains(self):
        metrics, driver, app = run_scenario("burst-then-quiesce")
        assert metrics.open_loop["final_queue"] == 0


class TestFaultScenarios:
    """The stub app has no actor cluster: every membership fault must
    be skipped gracefully and the run must still complete."""

    @pytest.mark.parametrize("name", sorted(FAULT_SCENARIOS))
    def test_faults_logged_and_skipped_without_cluster(self, name):
        metrics, driver, app = run_scenario(name)
        events = metrics.open_loop["fault_events"]
        assert events, "fault schedule must be installed and logged"
        assert all(not entry["applied"] for entry in events)
        assert metrics.total_throughput > 0

    def test_fault_times_stretch_with_duration_scale(self):
        scenario = get_scenario("silo-crash")
        full = scenario.build_config()
        half = scenario.build_config(duration_scale=0.5)
        assert half.faults.events[0].at == \
            full.faults.events[0].at * 0.5

    def test_fault_schedules_are_fresh_per_build(self):
        scenario = get_scenario("silo-crash")
        assert scenario.build_config().faults is not \
            scenario.build_config().faults

    def test_availability_report_without_applied_faults(self):
        from repro.analysis.availability import availability_report
        metrics, driver, app = run_scenario("silo-crash")
        report = availability_report(metrics)
        assert report.fault_second is None
        assert report.unavailability_window is None
        assert all(row["available"] for row in report.rows)


class TestAutoscaledScenarios:
    """The stub app has no scalable runtime: the controller still
    samples, but its actions record as skipped (the NullControlPlane
    degradation fault schedules have always used)."""

    @pytest.mark.parametrize("name", sorted(AUTOSCALED_SCENARIOS))
    def test_control_block_exported(self, name):
        metrics, driver, app = run_scenario(name)
        control = metrics.open_loop["control"]
        assert control["enabled"] is True
        assert control["samples"], "controller must have sampled"
        assert all(not entry["applied"]
                   for entry in control["actions"])
        assert metrics.total_throughput > 0

    def test_autoscaler_config_stretches_with_duration_scale(self):
        scenario = get_scenario("autoscale-flash-sale")
        full = scenario.build_config()
        half = scenario.build_config(duration_scale=0.5)
        assert half.autoscaler.interval == \
            full.autoscaler.interval * 0.5
        assert half.autoscaler.window == full.autoscaler.window * 0.5
        # The SLO is a service-time bound, not a schedule: it must not
        # stretch with the experiment clock.
        assert half.autoscaler.slo == full.autoscaler.slo

    def test_legacy_scenarios_export_no_control_block(self):
        metrics, driver, app = run_scenario("baseline")
        assert "control" not in metrics.open_loop

