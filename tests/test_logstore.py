"""Unit tests for the append-only audit log storage."""

import pytest

from repro.apps.logstore import AuditLogStore
from repro.runtime import Environment


def make_log(latency=0.001):
    env = Environment()
    return env, AuditLogStore(env, write_latency=latency)


def test_append_is_asynchronous():
    env, log = make_log(latency=0.5)
    log.append_async("checkout", "o1", {"total": 100})
    assert len(log) == 0
    assert log.pending == 1
    env.run()
    assert len(log) == 1
    assert log.pending == 0


def test_records_carry_metadata():
    env, log = make_log()
    log.append_async("checkout", "o1", {"total": 100})
    env.run()
    record = log.all()[0]
    assert record.operation == "checkout"
    assert record.subject == "o1"
    assert record.payload == {"total": 100}
    assert record.time == 0.001


def test_sequence_is_monotonic():
    env, log = make_log()
    for index in range(5):
        log.append_async("op", f"s{index}")
    env.run()
    sequences = [record.sequence for record in log.all()]
    assert sequences == sorted(sequences)
    assert len(set(sequences)) == 5


def test_query_by_operation_and_subject():
    env, log = make_log()
    log.append_async("checkout", "o1")
    log.append_async("checkout", "o2")
    log.append_async("update_price", "1/1")
    env.run()
    assert len(log.by_operation("checkout")) == 2
    assert len(log.by_subject("o1")) == 1
    assert log.by_subject("missing") == []


def test_query_between_times():
    env, log = make_log(latency=0.0)

    def scenario():
        log.append_async("a", "x")
        yield env.timeout(1.0)
        log.append_async("b", "y")
        yield env.timeout(1.0)
        log.append_async("c", "z")

    env.process(scenario())
    env.run()
    middle = log.between(0.5, 1.5)
    assert [record.operation for record in middle] == ["b"]
    with pytest.raises(ValueError):
        log.between(2.0, 1.0)


def test_tail():
    env, log = make_log()
    for index in range(5):
        log.append_async("op", f"s{index}")
    env.run()
    assert [record.subject for record in log.tail(2)] == ["s3", "s4"]
    assert log.tail(0) == []
    with pytest.raises(ValueError):
        log.tail(-1)


def test_customized_app_populates_audit_log():
    from repro.apps import ALL_APPS, AppConfig
    from repro.core import generate_dataset, WorkloadConfig
    from repro.marketplace.constants import PaymentMethod

    env = Environment(seed=3)
    app = ALL_APPS["customized-orleans"](
        env, AppConfig(silos=1, cores_per_silo=2))
    app.ingest(generate_dataset(
        WorkloadConfig(sellers=2, customers=5, products_per_seller=3),
        seed=3))

    def scenario():
        yield from app.add_item(1, 1, 1, 1)
        yield from app.checkout(1, "o-1", PaymentMethod.CREDIT_CARD)
        yield from app.update_price(1, 1, 777)
        yield from app.update_delivery()

    process = env.process(scenario())
    env.run(until=process)
    env.run(until=env.now + 0.5)
    operations = {record.operation for record in app.audit_log.all()}
    assert operations == {"checkout", "update_price", "update_delivery"}
    assert app.audit_log.by_subject("o-1")[0].payload["customer_id"] == 1
    assert app.runtime_stats()["audit_records"] == 3
