"""Hunt anomalies: what does eventual consistency actually cost?

Runs the eventually-consistent implementation under increasing message
loss and prints how each data-management criterion degrades, then runs
the customized stack under the same conditions to show it staying
anomaly-free.  This is the benchmark's core argument made concrete: the
throughput champion silently drops payments' side effects, ships stale
prices into carts, and reorders lifecycle events.

Run with:  python examples/consistency_audit.py
"""

from repro.apps import ALL_APPS, AppConfig
from repro.core import (
    BenchmarkDriver,
    DriverConfig,
    WorkloadConfig,
    audit_app,
)
from repro.runtime import Environment

DROP_RATES = (0.0, 0.01, 0.05)


def run_cell(app_name: str, drop: float):
    env = Environment(seed=19)
    app = ALL_APPS[app_name](env, AppConfig(
        silos=2, cores_per_silo=4, drop_probability=drop))
    driver = BenchmarkDriver(
        env, app,
        WorkloadConfig(sellers=6, customers=48, products_per_seller=6),
        DriverConfig(workers=24, warmup=0.3, duration=1.5, drain=1.5))
    metrics = driver.run()
    return metrics, audit_app(app, driver)


def main() -> None:
    for app_name in ("orleans-eventual", "customized-orleans"):
        print(f"\n### {app_name} ###")
        print(f"{'drop rate':>10s} {'tx/s':>9s} "
              f"{'C1 atomicity':>13s} {'C2 replication':>15s} "
              f"{'C3 integrity':>13s} {'C4 dashboard':>13s} "
              f"{'C5 ordering':>12s}")
        for drop in DROP_RATES:
            metrics, report = run_cell(app_name, drop)
            def cell(criterion):
                result = report.results[criterion]
                return (f"{result.violations}/{result.checked}"
                        if not result.passed else "clean")
            print(f"{drop:10.0%} {metrics.total_throughput:9,.0f} "
                  f"{cell('C1-atomicity'):>13s} "
                  f"{cell('C2-causal-replication'):>15s} "
                  f"{cell('C3-integrity'):>13s} "
                  f"{cell('C4-snapshot-dashboard'):>13s} "
                  f"{cell('C5-event-ordering'):>12s}")

    print("""
Reading the table:
 * C1: paid orders without shipments, dangling stock reservations and
   wrong customer spend — lost fire-and-forget messages never recover.
 * C2: carts captured prices older than updates the seller had already
   been acknowledged for (read-your-writes violations).
 * C4: the two dashboard queries disagreed about the same seller.
 * C5: a subscriber observed a shipment event before the payment event
   of the same order.
The customized stack (transactions + causal KV replication + MVCC
snapshot dashboard + causal topics) stays clean at every drop rate —
dropped calls abort cleanly instead of half-applying.""")


if __name__ == "__main__":
    main()
