"""Quickstart: run one Online Marketplace benchmark end to end.

Spins up the eventually-consistent implementation on a simulated
4-silo cluster, drives it with the default transaction mix for a few
simulated seconds, then prints the throughput/latency table and the
data-management criteria audit.

Run with:  python examples/quickstart.py
"""

from repro.apps import AppConfig, OrleansEventualApp
from repro.core import (
    BenchmarkDriver,
    DriverConfig,
    WorkloadConfig,
    audit_app,
)
from repro.runtime import Environment


def main() -> None:
    # 1. A deterministic simulation environment: same seed, same run.
    env = Environment(seed=42)

    # 2. The application under test: Online Marketplace on virtual
    #    actors with eventual consistency.
    app = OrleansEventualApp(env, AppConfig(silos=4, cores_per_silo=4))

    # 3. The benchmark driver: generates the marketplace (sellers,
    #    customers, products, stock), ingests it, warms up, submits the
    #    five business transactions from closed-loop workers, and
    #    collects statistics.
    driver = BenchmarkDriver(
        env, app,
        WorkloadConfig(sellers=10, customers=100, products_per_seller=10),
        DriverConfig(workers=32, warmup=0.5, duration=3.0, drain=1.0))
    metrics = driver.run()

    # 4. Results: throughput and latency per business transaction.
    print(f"app: {metrics.app}   workers: {metrics.workers}   "
          f"measured window: {metrics.duration}s (simulated)")
    print(f"total committed throughput: "
          f"{metrics.total_throughput:,.0f} tx/s\n")
    header = (f"{'operation':18s} {'ok':>7s} {'rej':>5s} {'fail':>5s} "
              f"{'tx/s':>9s} {'p50 ms':>8s} {'p99 ms':>8s}")
    print(header)
    print("-" * len(header))
    for name, op in sorted(metrics.ops.items()):
        print(f"{name:18s} {op.ok:7d} {op.rejected:5d} {op.failed:5d} "
              f"{op.throughput:9.1f} {op.latency['p50'] * 1000:8.2f} "
              f"{op.latency['p99'] * 1000:8.2f}")

    # 5. The data management criteria audit — the benchmark's real
    #    point: speed is easy, correctness criteria are not.
    report = audit_app(app, driver)
    print("\ncriteria audit:")
    for name, result in sorted(report.results.items()):
        status = "pass" if result.passed else \
            f"FAIL ({result.violations}/{result.checked})"
        print(f"  {name:28s} {status}")
    print("\n(the eventual implementation is the fastest — and the one "
          "that fails\n replication, dashboard and event-ordering "
          "criteria; see the other\n examples for the transactional and "
          "customized stacks)")


if __name__ == "__main__":
    main()
