"""Compare the four data platforms on identical workloads.

Reproduces the paper's Section III result interactively: the same
Online Marketplace workload is run against all four implementations,
then the throughput ranking, checkout latency and criteria compliance
are printed side by side.

Run with:  python examples/compare_platforms.py
"""

from repro.apps import ALL_APPS, AppConfig
from repro.core import (
    BenchmarkDriver,
    DriverConfig,
    WorkloadConfig,
    audit_app,
)
from repro.core.criteria import CRITERIA
from repro.runtime import Environment


def run_one(name: str):
    env = Environment(seed=7)
    app = ALL_APPS[name](env, AppConfig(silos=2, cores_per_silo=4))
    driver = BenchmarkDriver(
        env, app,
        WorkloadConfig(sellers=6, customers=48, products_per_seller=6),
        DriverConfig(workers=32, warmup=0.3, duration=2.0, drain=1.0))
    metrics = driver.run()
    report = audit_app(app, driver)
    return metrics, report


def main() -> None:
    results = {name: run_one(name) for name in ALL_APPS}

    print(f"{'implementation':24s} {'tx/s':>9s} {'checkout p50':>13s} "
          f"{'criteria':>10s}")
    print("-" * 62)
    txn_tput = results["orleans-transactions"][0].total_throughput
    for name, (metrics, report) in results.items():
        passed = sum(result.passed for result in report.results.values())
        print(f"{name:24s} {metrics.total_throughput:9,.0f} "
              f"{metrics.latency_of('checkout') * 1000:11.2f}ms "
              f"{passed:>6d}/5")

    statefun_tput = results["statefun"][0].total_throughput
    print(f"\nstatefun / orleans-transactions throughput ratio: "
          f"{statefun_tput / txn_tput:.2f}x  "
          f"(paper: 'outperforms Orleans Transactions by 2 times')")

    print("\ncriteria detail (paper: 'no single data platform supports "
          "all the\ncore data management requirements' — except the "
          "customized stack):\n")
    header = f"{'implementation':24s} " + "  ".join(
        criterion.split('-')[0] for criterion in CRITERIA)
    print(header)
    print("-" * len(header))
    for name, (_, report) in results.items():
        cells = []
        for criterion in CRITERIA:
            result = report.results.get(criterion)
            cells.append("pass" if result is None or result.passed
                         else "FAIL")
        print(f"{name:24s} " + "  ".join(cell.ljust(2) for cell in cells))


if __name__ == "__main__":
    main()
