"""Exactly-once in action: crash the dataflow mid-workload.

The Statefun implementation survives failures by rolling every
partition back to the last aligned checkpoint and replaying the ingress
log; deduplicated egress turns the replay into exactly-once end-to-end
effects.  This example injects two crashes during a run and shows that
order counts, stock levels and customer spend come out exactly as if
nothing had failed.

Run with:  python examples/failure_recovery.py
"""

from repro.apps import AppConfig, StatefunApp
from repro.core import generate_dataset, WorkloadConfig
from repro.dataflow import StatefunConfig
from repro.marketplace.constants import PaymentMethod
from repro.runtime import Environment

CHECKOUTS = 60


def run(crashes: int):
    env = Environment(seed=5)
    app = StatefunApp(env, AppConfig(silos=2, cores_per_silo=4),
                      statefun_config=StatefunConfig(
                          partitions=2, cores_per_partition=4,
                          checkpoint_interval=0.2,
                          recovery_pause=0.1))
    workload = WorkloadConfig(sellers=3, customers=30,
                              products_per_seller=5)
    app.ingest(generate_dataset(workload, seed=5))
    dataset = app.dataset

    completed = []

    def shopper(customer_id, index):
        product = dataset.products[index % len(dataset.products)]
        result = yield from app.add_item(
            customer_id, product.seller_id, product.product_id, 2)
        if not result.ok:
            return
        result = yield from app.checkout(
            customer_id, f"o{customer_id}-{index}",
            PaymentMethod.CREDIT_CARD)
        if result.ok:
            completed.append(result.payload["order_id"])

    def crasher():
        for _ in range(crashes):
            yield env.timeout(0.35)
            yield from app.runtime.inject_failure()

    for index in range(CHECKOUTS):
        customer = dataset.customer_ids[index % len(dataset.customer_ids)]
        env.process(shopper(customer, index))
    if crashes:
        env.process(crasher())
    env.run(until=20.0)

    views = app.audit_views()
    total_stock = sum(item["qty_available"]
                      for item in views["stock"].values())
    total_spent = sum(customer["spent_cents"]
                      for customer in views["customers"].values())
    order_count = sum(len(state.get("orders", {}))
                      for state in views["orders"].values())
    return {
        "completed_checkouts": len(completed),
        "orders_recorded": order_count,
        "total_stock": total_stock,
        "customer_spend": total_spent,
        "recoveries": app.runtime.recoveries,
        "checkpoints": app.runtime.checkpoints_taken,
    }


def main() -> None:
    clean = run(crashes=0)
    crashed = run(crashes=2)

    print(f"{'metric':22s} {'no failures':>13s} {'2 crashes':>13s}")
    print("-" * 50)
    for key in ("completed_checkouts", "orders_recorded", "total_stock",
                "customer_spend", "recoveries", "checkpoints"):
        print(f"{key:22s} {clean[key]:>13,} {crashed[key]:>13,}")

    for key in ("completed_checkouts", "orders_recorded", "total_stock",
                "customer_spend"):
        assert clean[key] == crashed[key], key
    print("\nAll business outcomes identical: checkpoint/replay plus "
          "deduplicated\negress gave exactly-once effects through two "
          "injected crashes.")


if __name__ == "__main__":
    main()
