"""The seller dashboard, three ways: why snapshots matter.

The dashboard issues two queries: (1) the financial amount of orders in
progress for a seller, and (2) the tuples that amount was computed
from.  The benchmark's criterion: both must reflect the same snapshot.

This example hammers one seller with concurrent checkouts while
repeatedly reading the dashboard on (a) the eventual implementation
(two independent grain reads) and (b) the customized implementation
(both queries on one MVCC snapshot), and reports how often the pair
disagreed.

Run with:  python examples/seller_dashboard.py
"""

from repro.apps import ALL_APPS, AppConfig
from repro.core import generate_dataset, WorkloadConfig
from repro.marketplace.constants import PaymentMethod
from repro.runtime import Environment

CHECKOUTS = 150
DASHBOARD_PROBES = 200


def run(app_name: str):
    env = Environment(seed=3)
    app = ALL_APPS[app_name](env, AppConfig(silos=2, cores_per_silo=4))
    workload = WorkloadConfig(sellers=2, customers=60,
                              products_per_seller=8)
    app.ingest(generate_dataset(workload, seed=3))
    dataset = app.dataset

    target_seller = 1
    products = [product for product in dataset.products
                if product.seller_id == target_seller]

    def shopper(customer_id, index):
        """One customer: fill the cart with the target seller's goods,
        check out, and (eventually) let delivery complete the order."""
        product = products[index % len(products)]
        result = yield from app.add_item(
            customer_id, product.seller_id, product.product_id, 1)
        if not result.ok:
            return
        yield from app.checkout(customer_id, f"o{customer_id}-{index}",
                                PaymentMethod.CREDIT_CARD)

    def delivery_loop():
        while True:
            yield env.timeout(0.05)
            yield from app.update_delivery()

    mismatches = 0
    probes_done = 0

    def prober():
        nonlocal mismatches, probes_done
        while probes_done < DASHBOARD_PROBES:
            yield env.timeout(0.002)
            result = yield from app.dashboard(target_seller)
            if not result.ok:
                continue
            probes_done += 1
            if (result.payload["amount_cents"]
                    != result.payload["entries_total_cents"]):
                mismatches += 1

    for index in range(CHECKOUTS):
        customer = dataset.customer_ids[index % len(dataset.customer_ids)]
        env.process(shopper(customer, index))
    env.process(delivery_loop())
    env.process(prober())
    env.run(until=10.0)
    return probes_done, mismatches


def main() -> None:
    print("snapshot consistency of the two dashboard queries under "
          "concurrent checkouts:\n")
    for app_name in ("orleans-eventual", "statefun",
                     "customized-orleans"):
        probes, mismatches = run(app_name)
        mechanism = {
            "orleans-eventual": "two independent grain reads",
            "statefun": "two independent function invocations",
            "customized-orleans": "both queries on one MVCC snapshot",
        }[app_name]
        print(f"{app_name:22s} ({mechanism})")
        print(f"{'':22s} {probes} probes, {mismatches} inconsistent "
              f"query pairs\n")
    print("Only the MVCC-backed dashboard satisfies the snapshot "
          "criterion:\nits aggregate and its tuples can never disagree.")


if __name__ == "__main__":
    main()
